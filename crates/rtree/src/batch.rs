//! Batched query execution on the frozen tree.
//!
//! A server answering many independent spatial queries pays the full
//! memory-latency bill per query: on a large arena each traversal is a
//! chain of dependent node fetches — the next node's planes cannot
//! load before the current mask says which child to pop — so the core
//! sits stalled on DRAM for most of a query. Batching breaks the
//! chain two ways:
//!
//! * **Spatial grouping.** The pack is sorted by the Z-order (Morton)
//!   key of each query's center, so spatially adjacent queries become
//!   temporally adjacent and share subtrees.
//! * **Shared wavefront traversal (windows).** The whole pack descends
//!   the arena as one breadth-first frontier. Each frame pairs a node
//!   with the subset of queries whose windows reach it, so a node's
//!   coordinate block is fetched from memory once per batch, however
//!   many queries prune against it. The frontier is a FIFO processed
//!   by index, which turns the pointer chase of a depth-first descent
//!   into a flat scan: the engine prefetches the node `WAVE_LOOKAHEAD`
//!   frames ahead of the one it is pruning, so by the time a frame is
//!   reached its lines have been filling from DRAM under many frames'
//!   worth of lane-kernel work — memory-level parallelism no single
//!   dependent traversal chain can reach. SIMD lane pruning (`simd`
//!   feature) compounds with both: the fetched lines are consumed four
//!   lanes per instruction.
//!
//! **Per-query equivalence.** Sharing is physical, not logical. A
//! query is active in exactly the nodes its own single-query traversal
//! would visit — the descent condition is the same lane mask the
//! single-query machine computes — so per-query counter contributions
//! are identical and accumulated [`SearchStats`] equal the sum of the
//! single-query stats. Results only surface at the leaf level, and a
//! breadth-first frontier that enqueues children in ascending lane
//! order visits the leaf level in lexicographic (path, lane) order —
//! exactly the order a depth-first descent with the same child order
//! reaches its leaves. With leaf lanes emitted lowest-first, every
//! query's result sequence is therefore bit-identical to the
//! one-at-a-time path (`FrozenRTree::window_visit_node`); the
//! differential fuzzer's frozen level checks exactly that. Results are
//! handed back **in input order** regardless of execution order.
//!
//! The sort key is deterministic (quantized to a 16-bit grid over the
//! root MBR; NaN centers collapse to cell 0), ties are broken by input
//! position, and the traversal schedule is a pure function of the
//! sorted order, so batch execution order is itself reproducible.

use crate::knn::Neighbor;
use crate::node::{ItemId, NodeId};
use crate::search::{NoStats, SearchScratch, Sink};
use crate::simd::{DefaultKernel, LaneKernel};
use crate::stats::SearchStats;
use crate::FrozenRTree;
use rtree_geom::{Point, Rect};

/// How many frontier frames ahead of the one being pruned the window
/// engine prefetches. Thirty-two in-flight node fetches cover DRAM
/// latency against the per-frame mask work; much further ahead and
/// prefetched lines risk eviction before use.
const WAVE_LOOKAHEAD: usize = 32;

/// Reusable state for the batch paths: the spatial-sort order, the
/// shared traversal scratch, and the flat result arenas. Allocated once
/// and reused across batches — the batch analogue of
/// [`SearchScratch`].
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// `(morton key, input index)` pairs, sorted to give execution order.
    order: Vec<(u32, u32)>,
    /// The shared single-query scratch every query in the batch reuses.
    scratch: SearchScratch,
    /// Flat item results; query `i` owns `ranges[i]`.
    items: Vec<ItemId>,
    /// Flat k-NN results; query `i` owns `ranges[i]`.
    neighbors: Vec<Neighbor>,
    /// Per input query: `(offset, len)` into the flat arena.
    ranges: Vec<(u32, u32)>,
    /// Wavefront frontier, FIFO by index: `(node, start, len)` — the
    /// node to visit and its active-query span inside `qlist`.
    frames: Vec<(NodeId, u32, u32)>,
    /// Active-query arena. Frames reference disjoint spans; spans are
    /// append-only within one batch and cleared between batches.
    qlist: Vec<u32>,
    /// Per-active-query lane masks of the frame being expanded.
    masks: Vec<u64>,
    /// Per input query result staging, flushed to `items` in input
    /// order once the shared traversal finishes.
    staging: Vec<Vec<ItemId>>,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        BatchScratch::default()
    }

    /// The embedded single-query scratch, for callers that mix batched
    /// and one-at-a-time execution over the same per-worker state.
    pub fn search(&mut self) -> &mut SearchScratch {
        &mut self.scratch
    }

    /// Current buffer capacities `(order, items, neighbors, ranges)` —
    /// stable capacities across batches demonstrate the zero-allocation
    /// steady state.
    pub fn capacities(&self) -> (usize, usize, usize, usize) {
        (
            self.order.capacity(),
            self.items.capacity(),
            self.neighbors.capacity(),
            self.ranges.capacity(),
        )
    }

    /// Sorts the batch into Z-order of query centers. `center(i)` maps
    /// an input index to the (possibly non-finite) query center.
    fn plan_order<C: Fn(usize) -> (f64, f64)>(&mut self, n: usize, frame: Option<Rect>, center: C) {
        self.order.clear();
        self.order.reserve(n);
        for i in 0..n {
            let (cx, cy) = center(i);
            self.order.push((morton_key(frame, cx, cy), i as u32));
        }
        // Unstable sort on the (key, input index) pair is deterministic:
        // the pair is unique per entry.
        self.order.sort_unstable();
        self.ranges.clear();
        self.ranges.resize(n, (0, 0));
        self.items.clear();
        self.neighbors.clear();
    }
}

/// Per-query item results of a batch, addressable by input index.
#[derive(Debug, Clone, Copy)]
pub struct ItemBatches<'s> {
    items: &'s [ItemId],
    ranges: &'s [(u32, u32)],
}

impl<'s> ItemBatches<'s> {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The results of input query `i`, in the exact order the
    /// single-query path reports them.
    pub fn get(&self, i: usize) -> &'s [ItemId] {
        let (off, len) = self.ranges[i];
        &self.items[off as usize..off as usize + len as usize]
    }

    /// Iterates per-query result slices in input order.
    pub fn iter(&self) -> impl Iterator<Item = &'s [ItemId]> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Per-query k-NN results of a batch, addressable by input index.
#[derive(Debug, Clone, Copy)]
pub struct NeighborBatches<'s> {
    neighbors: &'s [Neighbor],
    ranges: &'s [(u32, u32)],
}

impl<'s> NeighborBatches<'s> {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The neighbours of input query `i`, ascending by distance.
    pub fn get(&self, i: usize) -> &'s [Neighbor] {
        let (off, len) = self.ranges[i];
        &self.neighbors[off as usize..off as usize + len as usize]
    }

    /// Iterates per-query neighbour slices in input order.
    pub fn iter(&self) -> impl Iterator<Item = &'s [Neighbor]> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl FrozenRTree {
    /// Executes a pack of window queries (the paper's `SEARCH` when
    /// `within`, intersection search otherwise), spatially grouped, and
    /// returns per-query results in input order. Equivalent to calling
    /// [`search_within_into`](Self::search_within_into) /
    /// [`search_intersecting_into`](Self::search_intersecting_into) per
    /// window — same results, same order per query — but executes the
    /// batch in Z-order of window centers over one shared scratch.
    pub fn batch_windows<'s>(
        &self,
        windows: &[Rect],
        within: bool,
        scratch: &'s mut BatchScratch,
    ) -> ItemBatches<'s> {
        self.batch_windows_sink(windows, within, scratch, &mut NoStats)
    }

    /// [`batch_windows`](Self::batch_windows) accumulating
    /// [`SearchStats`] across the whole batch: counter totals equal the
    /// sum of per-query stats of the one-at-a-time path.
    pub fn batch_windows_stats<'s>(
        &self,
        windows: &[Rect],
        within: bool,
        scratch: &'s mut BatchScratch,
        stats: &mut SearchStats,
    ) -> ItemBatches<'s> {
        self.batch_windows_sink(windows, within, scratch, stats)
    }

    fn batch_windows_sink<'s, S: Sink>(
        &self,
        windows: &[Rect],
        within: bool,
        scratch: &'s mut BatchScratch,
        sink: &mut S,
    ) -> ItemBatches<'s> {
        scratch.plan_order(windows.len(), self.mbr(), |i| {
            let w = &windows[i];
            ((w.min_x + w.max_x) * 0.5, (w.min_y + w.max_y) * 0.5)
        });
        if self.fanout() > 64 {
            // Wide nodes have no u64 lane mask; fall back to Z-ordered
            // one-at-a-time traversals over the shared scratch.
            let BatchScratch {
                order,
                scratch: search,
                items,
                ranges,
                ..
            } = scratch;
            let mut per_query = std::mem::take(&mut search.out);
            for &(_, input) in order.iter() {
                let off = items.len() as u32;
                per_query.clear();
                self.window_traverse::<DefaultKernel, _, _>(
                    &windows[input as usize],
                    within,
                    &mut search.stack,
                    sink,
                    &mut |item, _| per_query.push(item),
                );
                items.extend_from_slice(&per_query);
                ranges[input as usize] = (off, items.len() as u32 - off);
            }
            search.out = per_query;
            return ItemBatches { items, ranges };
        }
        let fanout = self.fanout();
        let BatchScratch {
            order,
            items,
            ranges,
            frames,
            qlist,
            masks,
            staging,
            ..
        } = scratch;
        if order.is_empty() {
            return ItemBatches { items, ranges };
        }
        if staging.len() < windows.len() {
            staging.resize_with(windows.len(), Vec::new);
        }
        frames.clear();
        qlist.clear();
        // Seed: every query starts at the root, active span in Z-order.
        for &(_, input) in order.iter() {
            sink.query();
            staging[input as usize].clear();
            qlist.push(input);
        }
        frames.push((NodeId(0), 0, order.len() as u32));
        let mut i = 0usize;
        while i < frames.len() {
            // Keep the frontier `WAVE_LOOKAHEAD` node fetches ahead of
            // the pruning point.
            if let Some(&(ahead, _, _)) = frames.get(i + WAVE_LOOKAHEAD) {
                self.prefetch_node(ahead.0);
            }
            let (id, start, len) = frames[i];
            i += 1;
            let n = id.index() as u32;
            let leaf = self.is_leaf_index(n);
            let (x1, y1, x2, y2) = self.node_planes(n);
            let ids = self.node_ids(n);
            if leaf {
                for pos in start..start + len {
                    let q = qlist[pos as usize] as usize;
                    sink.node(true);
                    let mut mask = if within {
                        DefaultKernel::mask_within(x1, y1, x2, y2, &windows[q])
                    } else {
                        DefaultKernel::mask_intersects(x1, y1, x2, y2, &windows[q])
                    };
                    while mask != 0 {
                        let lane = mask.trailing_zeros() as usize;
                        mask &= mask - 1;
                        sink.item();
                        staging[q].push(ItemId(ids[lane]));
                    }
                }
            } else if len == 1 {
                // Fringe fast path: one active query needs no
                // per-child distribution scan.
                let q = qlist[start as usize];
                sink.node(false);
                let mut mask = DefaultKernel::mask_intersects(x1, y1, x2, y2, &windows[q as usize]);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    let child = NodeId(ids[lane] as u32);
                    if frames.len() <= i + WAVE_LOOKAHEAD {
                        self.prefetch_node(child.0);
                    }
                    frames.push((child, qlist.len() as u32, 1));
                    qlist.push(q);
                }
            } else {
                masks.clear();
                for pos in start..start + len {
                    let q = qlist[pos as usize] as usize;
                    sink.node(false);
                    masks.push(DefaultKernel::mask_intersects(x1, y1, x2, y2, &windows[q]));
                }
                // Children enqueue in ascending lane order so the
                // frontier walks each level lexicographically — the
                // order a depth-first descent reaches its leaves.
                for (lane, &id_lane) in ids.iter().enumerate().take(fanout) {
                    let bit = 1u64 << lane;
                    let child_start = qlist.len() as u32;
                    for off in 0..len {
                        let q = qlist[(start + off) as usize];
                        if masks[off as usize] & bit != 0 {
                            qlist.push(q);
                        }
                    }
                    let child_len = qlist.len() as u32 - child_start;
                    if child_len > 0 {
                        let child = NodeId(id_lane as u32);
                        // A child that will be reached before the
                        // rolling lookahead gets there is prefetched
                        // at enqueue instead.
                        if frames.len() <= i + WAVE_LOOKAHEAD {
                            self.prefetch_node(child.0);
                        }
                        frames.push((child, child_start, child_len));
                    }
                }
            }
        }
        for (q, out) in staging.iter_mut().enumerate().take(windows.len()) {
            let off = items.len() as u32;
            items.extend_from_slice(out);
            out.clear();
            ranges[q] = (off, items.len() as u32 - off);
        }
        ItemBatches { items, ranges }
    }

    /// Executes a pack of point queries (the Table 1 workload),
    /// spatially grouped; per-query results in input order, each
    /// bit-identical to [`point_query_into`](Self::point_query_into).
    pub fn batch_points<'s>(
        &self,
        points: &[Point],
        scratch: &'s mut BatchScratch,
    ) -> ItemBatches<'s> {
        self.batch_points_sink(points, scratch, &mut NoStats)
    }

    /// [`batch_points`](Self::batch_points) accumulating
    /// [`SearchStats`] across the whole batch.
    pub fn batch_points_stats<'s>(
        &self,
        points: &[Point],
        scratch: &'s mut BatchScratch,
        stats: &mut SearchStats,
    ) -> ItemBatches<'s> {
        self.batch_points_sink(points, scratch, stats)
    }

    fn batch_points_sink<'s, S: Sink>(
        &self,
        points: &[Point],
        scratch: &'s mut BatchScratch,
        sink: &mut S,
    ) -> ItemBatches<'s> {
        scratch.plan_order(points.len(), self.mbr(), |i| (points[i].x, points[i].y));
        let BatchScratch {
            order,
            scratch: search,
            items,
            ranges,
            ..
        } = scratch;
        let mut per_query = std::mem::take(&mut search.out);
        for &(_, input) in order.iter() {
            let off = items.len() as u32;
            per_query.clear();
            self.point_traverse::<DefaultKernel, _>(
                points[input as usize],
                &mut search.stack,
                sink,
                &mut per_query,
            );
            items.extend_from_slice(&per_query);
            ranges[input as usize] = (off, items.len() as u32 - off);
        }
        search.out = per_query;
        ItemBatches { items, ranges }
    }

    /// Executes a pack of k-NN queries `(point, k)`, spatially grouped;
    /// per-query neighbours in input order, each bit-identical to
    /// [`nearest_neighbors_into`](Self::nearest_neighbors_into).
    pub fn batch_knn<'s>(
        &self,
        queries: &[(Point, usize)],
        scratch: &'s mut BatchScratch,
    ) -> NeighborBatches<'s> {
        self.batch_knn_sink(queries, scratch, &mut NoStats)
    }

    /// [`batch_knn`](Self::batch_knn) accumulating [`SearchStats`]
    /// across the whole batch.
    pub fn batch_knn_stats<'s>(
        &self,
        queries: &[(Point, usize)],
        scratch: &'s mut BatchScratch,
        stats: &mut SearchStats,
    ) -> NeighborBatches<'s> {
        self.batch_knn_sink(queries, scratch, stats)
    }

    fn batch_knn_sink<'s, S: Sink>(
        &self,
        queries: &[(Point, usize)],
        scratch: &'s mut BatchScratch,
        sink: &mut S,
    ) -> NeighborBatches<'s> {
        scratch.plan_order(queries.len(), self.mbr(), |i| {
            (queries[i].0.x, queries[i].0.y)
        });
        let BatchScratch {
            order,
            scratch: search,
            neighbors,
            ranges,
            ..
        } = scratch;
        let knn = search.knn();
        let mut heap = std::mem::take(&mut knn.heap);
        let mut per_query = std::mem::take(&mut knn.out);
        for &(_, input) in order.iter() {
            let (p, k) = queries[input as usize];
            let off = neighbors.len() as u32;
            self.knn_traverse::<DefaultKernel, _>(p, k, sink, &mut heap, &mut per_query);
            neighbors.extend_from_slice(&per_query);
            ranges[input as usize] = (off, neighbors.len() as u32 - off);
        }
        knn.heap = heap;
        knn.out = per_query;
        NeighborBatches { neighbors, ranges }
    }
}

/// Z-order key of a query center over the tree's root MBR: each axis is
/// quantized to 16 bits, the bits interleaved (x in the even positions).
/// Centers outside the frame clamp to its edge; NaN (e.g. a NaN query
/// window) quantizes to 0 via the saturating `as` cast, so the key is
/// total and deterministic for every bit pattern.
fn morton_key(frame: Option<Rect>, cx: f64, cy: f64) -> u32 {
    let Some(frame) = frame else {
        return 0;
    };
    let qx = quantize(cx, frame.min_x, frame.max_x);
    let qy = quantize(cy, frame.min_y, frame.max_y);
    interleave(qx) | (interleave(qy) << 1)
}

fn quantize(v: f64, lo: f64, hi: f64) -> u16 {
    let span = hi - lo;
    let t = if span > 0.0 { (v - lo) / span } else { 0.0 };
    // `as` saturates and maps NaN to 0.
    (t * 65535.0) as u16
}

/// Spreads the 16 bits of `v` into the even bit positions of a `u32`.
fn interleave(v: u16) -> u32 {
    let mut x = v as u32;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::tree::RTree;

    fn build(n: usize) -> FrozenRTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..n {
            let x = (i % 29) as f64 * 3.5 + (i as f64 * 0.013);
            let y = (i / 29) as f64 * 2.5;
            t.insert(Rect::from_point(Point::new(x, y)), ItemId(i as u64));
        }
        FrozenRTree::freeze(&t)
    }

    fn windows(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|q| {
                let g = (q * 13 % 80) as f64;
                let h = (q * 7 % 50) as f64;
                Rect::new(g, h, g + 12.0, h + 9.0)
            })
            .collect()
    }

    #[test]
    fn batched_windows_match_single_queries_and_stats() {
        let f = build(600);
        let ws = windows(37);
        let mut batch = BatchScratch::new();
        let mut single = SearchScratch::new();
        for within in [true, false] {
            let mut batch_stats = SearchStats::default();
            let mut single_stats = SearchStats::default();
            let got = f.batch_windows_stats(&ws, within, &mut batch, &mut batch_stats);
            assert_eq!(got.len(), ws.len());
            for (i, w) in ws.iter().enumerate() {
                let expect = if within {
                    f.search_within(w, &mut single_stats)
                } else {
                    f.search_intersecting(w, &mut single_stats)
                };
                assert_eq!(got.get(i), expect.as_slice(), "query {i} within={within}");
                // And the scratch path agrees too.
                let via_scratch = if within {
                    f.search_within_into(w, &mut single)
                } else {
                    f.search_intersecting_into(w, &mut single)
                };
                assert_eq!(got.get(i), via_scratch, "scratch path query {i}");
            }
            assert_eq!(batch_stats, single_stats, "within={within}");
        }
    }

    #[test]
    fn batched_points_and_knn_match_single_queries() {
        let f = build(500);
        let points: Vec<Point> = (0..50)
            .map(|i| Point::new((i * 11 % 90) as f64, (i * 5 % 40) as f64))
            .collect();
        let mut batch = BatchScratch::new();
        let mut batch_stats = SearchStats::default();
        let mut single_stats = SearchStats::default();
        let got = f.batch_points_stats(&points, &mut batch, &mut batch_stats);
        for (i, &p) in points.iter().enumerate() {
            assert_eq!(
                got.get(i),
                f.point_query(p, &mut single_stats).as_slice(),
                "point {i}"
            );
        }
        assert_eq!(batch_stats, single_stats);

        let knn_queries: Vec<(Point, usize)> = points
            .iter()
            .map(|&p| (p, 1 + (p.x as usize % 7)))
            .collect();
        let mut batch_stats = SearchStats::default();
        let mut single_stats = SearchStats::default();
        let got = f.batch_knn_stats(&knn_queries, &mut batch, &mut batch_stats);
        for (i, &(p, k)) in knn_queries.iter().enumerate() {
            assert_eq!(
                got.get(i),
                f.nearest_neighbors(p, k, &mut single_stats).as_slice(),
                "knn {i}"
            );
        }
        assert_eq!(batch_stats, single_stats);
    }

    #[test]
    fn results_come_back_in_input_order_not_execution_order() {
        let f = build(400);
        // Deliberately anti-sorted input: far corner first.
        let ws = vec![
            Rect::new(90.0, 30.0, 110.0, 45.0),
            Rect::new(0.0, 0.0, 15.0, 10.0),
            Rect::new(50.0, 20.0, 70.0, 32.0),
            Rect::new(0.0, 0.0, 15.0, 10.0),
        ];
        let mut batch = BatchScratch::new();
        let got = f.batch_windows(&ws, false, &mut batch);
        let mut stats = SearchStats::default();
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(got.get(i), f.search_intersecting(w, &mut stats).as_slice());
        }
        // Identical queries at different positions get identical slices.
        assert_eq!(got.get(1), got.get(3));
    }

    #[test]
    fn empty_batches_and_empty_tree() {
        let f = build(100);
        let mut batch = BatchScratch::new();
        assert!(f.batch_windows(&[], true, &mut batch).is_empty());
        assert!(f.batch_points(&[], &mut batch).is_empty());
        assert!(f.batch_knn(&[], &mut batch).is_empty());

        let empty = FrozenRTree::freeze(&RTree::new(RTreeConfig::PAPER));
        let got = empty.batch_windows(&windows(5), true, &mut batch);
        for i in 0..5 {
            assert!(got.get(i).is_empty());
        }
        // k-NN on the empty tree returns empty per-query slices.
        let got = empty.batch_knn(&[(Point::new(0.0, 0.0), 3)], &mut batch);
        assert!(got.get(0).is_empty());
    }

    #[test]
    fn degenerate_and_nan_windows_are_batchable() {
        let f = build(300);
        let mut batch = BatchScratch::new();
        let ws = vec![
            Rect::new(5.0, 5.0, 5.0, 5.0),
            Rect {
                min_x: f64::NAN,
                min_y: f64::NAN,
                max_x: f64::NAN,
                max_y: f64::NAN,
            },
            Rect {
                min_x: f64::NEG_INFINITY,
                min_y: f64::NEG_INFINITY,
                max_x: f64::INFINITY,
                max_y: f64::INFINITY,
            },
            Rect::new(10.0, 0.0, 40.0, 30.0),
        ];
        let got = f.batch_windows(&ws, true, &mut batch);
        let mut stats = SearchStats::default();
        for (i, w) in ws.iter().enumerate() {
            assert_eq!(got.get(i), f.search_within(w, &mut stats).as_slice(), "{i}");
        }
    }

    #[test]
    fn batch_scratch_is_allocation_free_after_warmup() {
        let f = build(700);
        let ws = windows(64);
        let points: Vec<Point> = ws.iter().map(|w| Point::new(w.min_x, w.min_y)).collect();
        let knn: Vec<(Point, usize)> = points.iter().map(|&p| (p, 6)).collect();
        let mut batch = BatchScratch::new();
        f.batch_windows(&ws, true, &mut batch);
        f.batch_points(&points, &mut batch);
        f.batch_knn(&knn, &mut batch);
        let warm = batch.capacities();
        for _ in 0..5 {
            f.batch_windows(&ws, true, &mut batch);
            f.batch_points(&points, &mut batch);
            f.batch_knn(&knn, &mut batch);
            assert_eq!(batch.capacities(), warm, "batch scratch reallocated");
        }
    }

    #[test]
    fn morton_key_orders_a_grid_along_the_z_curve() {
        let frame = Some(Rect::new(0.0, 0.0, 100.0, 100.0));
        // The four quadrant centers follow the Z traversal order.
        let ll = morton_key(frame, 25.0, 25.0);
        let lr = morton_key(frame, 75.0, 25.0);
        let ul = morton_key(frame, 25.0, 75.0);
        let ur = morton_key(frame, 75.0, 75.0);
        assert!(ll < lr && lr < ul && ul < ur);
        // NaN and out-of-frame centers are total and deterministic.
        assert_eq!(morton_key(frame, f64::NAN, f64::NAN), 0);
        assert_eq!(morton_key(frame, -1e300, -5.0), morton_key(frame, 0.0, 0.0));
        assert_eq!(morton_key(None, 10.0, 10.0), 0);
    }
}
