//! Bottom-up tree construction, the primitive under every packing
//! algorithm.
//!
//! `PACK` (and its descendants in `packed-rtree-core`) decide *which*
//! entries share a node; this builder turns those groupings into a
//! well-formed [`RTree`], level by level, "working ever backwards, until
//! the root is finally reached and created" (§3.3).

use crate::config::RTreeConfig;
use crate::node::{Entry, ItemId, Node, NodeId};
use crate::tree::RTree;
use rtree_geom::Rect;

/// Incremental bottom-up builder.
///
/// Usage: create leaves with [`add_leaf`](Self::add_leaf), then build each
/// internal level with [`add_internal`](Self::add_internal) over the
/// `(NodeId, Rect)` handles of the level below, and finish with
/// [`finish`](Self::finish) (single root) or
/// [`finish_empty`](Self::finish_empty).
pub struct BottomUpBuilder {
    tree: RTree,
    items: usize,
}

/// A contiguous range of arena slots handed out by
/// [`BottomUpBuilder::reserve`].
///
/// The node ids of the range are known before the nodes exist, which is
/// what lets a parallel packer assign every group its final id up front
/// and materialize nodes into disjoint sub-slices from worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ReservedRange {
    start: u32,
    len: usize,
}

impl ReservedRange {
    /// The id of the `offset`-th slot of the range.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the range.
    #[inline]
    pub fn id(&self, offset: usize) -> NodeId {
        assert!(offset < self.len, "offset {offset} outside reserved range");
        NodeId(self.start + offset as u32)
    }

    /// Number of reserved slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl BottomUpBuilder {
    /// Starts building a tree with the given configuration.
    pub fn new(config: RTreeConfig) -> Self {
        // Start from a completely empty arena: ids are handed out densely
        // from 0, so level-by-level construction (sequential or through
        // reserved ranges) yields identical layouts.
        BottomUpBuilder {
            tree: RTree::empty_arena(config),
            items: 0,
        }
    }

    /// Reserves `count` contiguous arena slots for one level's nodes and
    /// returns their id range.
    ///
    /// Fill every slot through
    /// [`reserved_slots_mut`](Self::reserved_slots_mut) and then seal the
    /// range with [`commit_reserved`](Self::commit_reserved). Equivalent
    /// to `count` calls of [`add_leaf`](Self::add_leaf) /
    /// [`add_internal`](Self::add_internal) in offset order, but the ids
    /// are known up front so the nodes can be built out of order (e.g. by
    /// worker threads writing disjoint sub-slices).
    pub fn reserve(&mut self, count: usize) -> ReservedRange {
        let start = self.tree.arena_reserve(count);
        ReservedRange { start, len: count }
    }

    /// Mutable slice over a reserved range's slots, in offset order.
    ///
    /// Slot `i` of the slice corresponds to node id `range.id(i)`. Split
    /// the slice (`split_at_mut`) to hand disjoint parts to threads.
    pub fn reserved_slots_mut(&mut self, range: &ReservedRange) -> &mut [Option<Node>] {
        self.tree.arena_slice_mut(range.start, range.len)
    }

    /// Seals a reserved range after all slots have been filled with nodes
    /// of the given `level`, folding their items into the tree's count.
    ///
    /// # Panics
    ///
    /// Panics if any slot is still empty, holds a node of a different
    /// level, or violates the `1..=M` entry-count bounds.
    pub fn commit_reserved(&mut self, range: &ReservedRange, level: u32) {
        let max = self.tree.config().max_entries;
        let mut items = 0usize;
        for offset in 0..range.len {
            let slot = range.id(offset);
            let node = self.tree.node(slot);
            assert_eq!(node.level, level, "{slot}: wrong level in reserved range");
            assert!(
                !node.entries.is_empty() && node.len() <= max,
                "{slot}: {} entries outside 1..={max}",
                node.len()
            );
            if node.is_leaf() {
                items += node.len();
            }
        }
        self.items += items;
    }

    /// Creates a leaf node from up to `M` item entries, returning its
    /// handle and MBR.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or exceeds the branching factor.
    pub fn add_leaf(&mut self, entries: Vec<(Rect, ItemId)>) -> (NodeId, Rect) {
        assert!(!entries.is_empty(), "empty leaf group");
        assert!(
            entries.len() <= self.tree.config().max_entries,
            "leaf group of {} exceeds M={}",
            entries.len(),
            self.tree.config().max_entries
        );
        self.items += entries.len();
        let mut node = Node::new(0);
        node.entries = entries
            .into_iter()
            .map(|(mbr, item)| Entry::item(mbr, item))
            .collect();
        let mbr = node.mbr().expect("non-empty");
        (self.tree.alloc(node), mbr)
    }

    /// Creates an internal node at `level ≥ 1` from up to `M` child
    /// handles, returning its handle and MBR.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty, exceeds the branching factor, or any
    /// child is not at `level - 1`.
    pub fn add_internal(&mut self, level: u32, children: Vec<(NodeId, Rect)>) -> (NodeId, Rect) {
        assert!(level >= 1, "internal nodes start at level 1");
        assert!(!children.is_empty(), "empty internal group");
        assert!(
            children.len() <= self.tree.config().max_entries,
            "group of {} exceeds M={}",
            children.len(),
            self.tree.config().max_entries
        );
        for &(child, _) in &children {
            assert_eq!(
                self.tree.node(child).level,
                level - 1,
                "child {child} not at level {}",
                level - 1
            );
        }
        let mut node = Node::new(level);
        node.entries = children
            .into_iter()
            .map(|(id, mbr)| Entry::node(mbr, id))
            .collect();
        let mbr = node.mbr().expect("non-empty");
        (self.tree.alloc(node), mbr)
    }

    /// Finishes with `root` as the tree's root.
    ///
    /// # Panics
    ///
    /// Panics if `root` is not a live node of this builder.
    pub fn finish(mut self, root: NodeId) -> RTree {
        let _ = self.tree.node(root); // liveness check
        self.tree.set_root(root);
        *self.tree.len_mut() = self.items;
        self.tree
    }

    /// Finishes an empty tree (no leaves were added).
    pub fn finish_empty(mut self) -> RTree {
        assert_eq!(self.items, 0, "items were added; call finish(root)");
        let root = self.tree.alloc(Node::new(0));
        self.tree.set_root(root);
        self.tree
    }

    /// The configuration being built against.
    pub fn config(&self) -> RTreeConfig {
        self.tree.config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn single_leaf_becomes_root() {
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let (leaf, _) = b.add_leaf(vec![(pt(0.0, 0.0), ItemId(0)), (pt(1.0, 1.0), ItemId(1))]);
        let t = b.finish(leaf);
        assert_eq!(t.len(), 2);
        assert_eq!(t.depth(), 0);
        t.validate_with(false).unwrap();
    }

    #[test]
    fn two_level_build() {
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let l1 = b.add_leaf(vec![(pt(0.0, 0.0), ItemId(0)), (pt(1.0, 1.0), ItemId(1))]);
        let l2 = b.add_leaf(vec![
            (pt(10.0, 10.0), ItemId(2)),
            (pt(11.0, 11.0), ItemId(3)),
        ]);
        let (root, _) = b.add_internal(1, vec![l1, l2]);
        let t = b.finish(root);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.len(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn empty_build() {
        let t = BottomUpBuilder::new(RTreeConfig::PAPER).finish_empty();
        assert!(t.is_empty());
        t.assert_valid();
    }

    #[test]
    #[should_panic(expected = "exceeds M")]
    fn oversized_leaf_group_rejected() {
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        b.add_leaf((0..5).map(|i| (pt(i as f64, 0.0), ItemId(i))).collect());
    }

    #[test]
    #[should_panic(expected = "not at level")]
    fn level_mismatch_rejected() {
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let l1 = b.add_leaf(vec![(pt(0.0, 0.0), ItemId(0))]);
        b.add_internal(2, vec![l1]);
    }

    #[test]
    fn reserve_matches_incremental_build() {
        // Building through a reserved range must be indistinguishable
        // from the equivalent add_leaf/add_internal sequence.
        let leaves = [
            vec![(pt(0.0, 0.0), ItemId(0)), (pt(1.0, 1.0), ItemId(1))],
            vec![(pt(10.0, 10.0), ItemId(2)), (pt(11.0, 11.0), ItemId(3))],
        ];
        let mut a = BottomUpBuilder::new(RTreeConfig::PAPER);
        let ha: Vec<_> = leaves.iter().map(|l| a.add_leaf(l.clone())).collect();
        let (root_a, _) = a.add_internal(1, ha);
        let ta = a.finish(root_a);

        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let range = b.reserve(2);
        {
            let slots = b.reserved_slots_mut(&range);
            for (slot, group) in slots.iter_mut().zip(&leaves) {
                let mut node = Node::new(0);
                node.entries = group.iter().map(|&(r, id)| Entry::item(r, id)).collect();
                *slot = Some(node);
            }
        }
        b.commit_reserved(&range, 0);
        let hb: Vec<_> = (0..2)
            .map(|i| {
                let id = range.id(i);
                // Recompute the handle MBRs the way a packer would.
                (
                    id,
                    Rect::mbr_of_rects(leaves[i].iter().map(|&(r, _)| r)).unwrap(),
                )
            })
            .collect();
        let (root_b, _) = b.add_internal(1, hb);
        let tb = b.finish(root_b);
        assert_eq!(ta, tb);
        tb.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "stale or foreign NodeId")]
    fn commit_rejects_unfilled_slots() {
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let range = b.reserve(2);
        b.reserved_slots_mut(&range)[0] = Some({
            let mut n = Node::new(0);
            n.entries.push(Entry::item(pt(0.0, 0.0), ItemId(0)));
            n
        });
        b.commit_reserved(&range, 0); // slot 1 still empty
    }

    #[test]
    fn built_tree_is_searchable() {
        let mut b = BottomUpBuilder::new(RTreeConfig::PAPER);
        let l1 = b.add_leaf(vec![(pt(0.0, 0.0), ItemId(0)), (pt(1.0, 1.0), ItemId(1))]);
        let l2 = b.add_leaf(vec![
            (pt(10.0, 10.0), ItemId(2)),
            (pt(11.0, 11.0), ItemId(3)),
        ]);
        let (root, _) = b.add_internal(1, vec![l1, l2]);
        let t = b.finish(root);
        let mut stats = crate::SearchStats::default();
        let hits = t.search_within(&Rect::new(-1.0, -1.0, 2.0, 2.0), &mut stats);
        assert_eq!(hits.len(), 2);
        // Dynamic insert on a built tree keeps working (the paper's §3.4).
        let mut t = t;
        t.insert(pt(5.0, 5.0), ItemId(4));
        t.validate_with(false).unwrap();
        assert_eq!(t.len(), 5);
    }
}
