//! Branch-and-bound k-nearest-neighbour search.
//!
//! Not part of the 1985 paper, but the natural extension Roussopoulos
//! himself published a decade later (Roussopoulos, Kelley & Vincent,
//! SIGMOD 1995); included because packed trees make it markedly cheaper
//! and the `knn` bench uses it as an ablation workload.

use crate::node::{Child, ItemId, NodeId};
use crate::search::{NoStats, Sink};
use crate::stats::SearchStats;
use crate::tree::RTree;
use rtree_geom::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A nearest-neighbour result: item, its MBR, and squared distance from
/// the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The matching item.
    pub item: ItemId,
    /// Its bounding rectangle.
    pub mbr: Rect,
    /// Squared distance from the query point to the MBR.
    pub distance_sq: f64,
}

/// Min-heap wrapper ordered by distance.
#[derive(Debug, Clone)]
pub(crate) struct HeapEntry {
    pub(crate) dist: f64,
    pub(crate) kind: HeapKind,
}

#[derive(Debug, Clone)]
pub(crate) enum HeapKind {
    Node(NodeId),
    Item(ItemId, Rect),
}

/// Reusable state for the allocation-free k-NN path: the best-first
/// priority queue and the result list, allocated once and reused across
/// [`nearest_neighbors_into`](RTree::nearest_neighbors_into) calls —
/// the k-NN analogue of [`SearchScratch`](crate::SearchScratch).
#[derive(Debug, Default, Clone)]
pub struct KnnScratch {
    pub(crate) heap: BinaryHeap<HeapEntry>,
    pub(crate) out: Vec<Neighbor>,
}

impl KnnScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        KnnScratch::default()
    }

    /// The neighbours of the most recent `nearest_neighbors_into` query.
    pub fn neighbors(&self) -> &[Neighbor] {
        &self.out
    }

    /// Current capacity of the two buffers `(heap, results)` — stable
    /// capacities across queries demonstrate the zero-allocation steady
    /// state.
    pub fn capacities(&self) -> (usize, usize) {
        (self.heap.capacity(), self.out.capacity())
    }
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on distance.
        other.dist.total_cmp(&self.dist)
    }
}

impl RTree {
    /// Returns the `k` items whose MBRs are nearest to `p`, ordered by
    /// ascending distance (ties in arbitrary order).
    ///
    /// Best-first branch and bound: a priority queue of nodes and items
    /// keyed by `min_distance_sq`; a node is expanded only if it could
    /// still contribute a closer result, so visited-node counts directly
    /// reflect how well the tree's MBRs cluster.
    pub fn nearest_neighbors(&self, p: Point, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        let mut heap = BinaryHeap::new();
        let mut out = Vec::with_capacity(k);
        self.knn_traverse(p, k, stats, &mut heap, &mut out);
        out
    }

    /// [`nearest_neighbors`](Self::nearest_neighbors) without statistics
    /// or per-call allocation: the heap and result list live in (and are
    /// borrowed from) the reusable `scratch`.
    pub fn nearest_neighbors_into<'s>(
        &self,
        p: Point,
        k: usize,
        scratch: &'s mut KnnScratch,
    ) -> &'s [Neighbor] {
        let KnnScratch { heap, out } = scratch;
        self.knn_traverse(p, k, &mut NoStats, heap, out);
        out
    }

    /// Best-first branch and bound over an explicit min-heap, identical
    /// for the stats path and the scratch path so both report the same
    /// neighbours in the same order.
    fn knn_traverse<S: Sink>(
        &self,
        p: Point,
        k: usize,
        sink: &mut S,
        heap: &mut BinaryHeap<HeapEntry>,
        out: &mut Vec<Neighbor>,
    ) {
        sink.query();
        heap.clear();
        out.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        heap.push(HeapEntry {
            dist: 0.0,
            kind: HeapKind::Node(self.root()),
        });
        while let Some(HeapEntry { dist, kind }) = heap.pop() {
            match kind {
                HeapKind::Item(item, mbr) => {
                    out.push(Neighbor {
                        item,
                        mbr,
                        distance_sq: dist,
                    });
                    sink.item();
                    if out.len() == k {
                        break;
                    }
                }
                HeapKind::Node(id) => {
                    let node = self.node(id);
                    sink.node(node.is_leaf());
                    for e in &node.entries {
                        let d = e.mbr.min_distance_sq(p);
                        match e.child {
                            Child::Node(c) => heap.push(HeapEntry {
                                dist: d,
                                kind: HeapKind::Node(c),
                            }),
                            Child::Item(item) => heap.push(HeapEntry {
                                dist: d,
                                kind: HeapKind::Item(item, e.mbr),
                            }),
                        }
                    }
                }
            }
        }
    }

    /// The single nearest item to `p`, if the tree is non-empty.
    pub fn nearest_neighbor(&self, p: Point, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nearest_neighbors(p, 1, stats).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn build_grid(n: usize) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..n {
            let x = (i % 10) as f64 * 10.0;
            let y = (i / 10) as f64 * 10.0;
            t.insert(Rect::from_point(Point::new(x, y)), ItemId(i as u64));
        }
        t
    }

    #[test]
    fn empty_and_zero_k() {
        let t = RTree::new(RTreeConfig::PAPER);
        let mut stats = SearchStats::default();
        assert!(t
            .nearest_neighbors(Point::new(0.0, 0.0), 3, &mut stats)
            .is_empty());
        let t2 = build_grid(5);
        assert!(t2
            .nearest_neighbors(Point::new(0.0, 0.0), 0, &mut stats)
            .is_empty());
    }

    #[test]
    fn nearest_is_exact() {
        let t = build_grid(100);
        let mut stats = SearchStats::default();
        let n = t
            .nearest_neighbor(Point::new(34.0, 56.0), &mut stats)
            .unwrap();
        assert_eq!(n.item, ItemId(63)); // grid point (30, 60)
        assert_eq!(n.distance_sq, 16.0 + 16.0);
    }

    #[test]
    fn knn_matches_brute_force() {
        let t = build_grid(100);
        let items = t.items();
        let mut stats = SearchStats::default();
        for (qx, qy) in [(0.0, 0.0), (45.5, 45.5), (91.0, 2.0), (-10.0, 120.0)] {
            let q = Point::new(qx, qy);
            let got = t.nearest_neighbors(q, 7, &mut stats);
            assert_eq!(got.len(), 7);
            let mut brute: Vec<(f64, ItemId)> = items
                .iter()
                .map(|&(mbr, id)| (mbr.min_distance_sq(q), id))
                .collect();
            brute.sort_by(|a, b| a.0.total_cmp(&b.0));
            // Distances must agree (ids may differ under ties).
            for (i, n) in got.iter().enumerate() {
                assert_eq!(n.distance_sq, brute[i].0, "rank {i} at {q}");
            }
            // Results are sorted ascending.
            for w in got.windows(2) {
                assert!(w[0].distance_sq <= w[1].distance_sq);
            }
        }
    }

    #[test]
    fn k_larger_than_population() {
        let t = build_grid(5);
        let mut stats = SearchStats::default();
        let got = t.nearest_neighbors(Point::new(0.0, 0.0), 50, &mut stats);
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn into_path_matches_stats_path() {
        let t = build_grid(100);
        let mut stats = SearchStats::default();
        let mut scratch = KnnScratch::new();
        for (qx, qy) in [(0.0, 0.0), (45.5, 45.5), (91.0, 2.0), (-10.0, 120.0)] {
            let q = Point::new(qx, qy);
            assert_eq!(
                t.nearest_neighbors_into(q, 7, &mut scratch),
                t.nearest_neighbors(q, 7, &mut stats).as_slice()
            );
            assert_eq!(scratch.neighbors().len(), 7);
        }
    }

    #[test]
    fn knn_scratch_stops_growing() {
        let t = build_grid(100);
        let mut scratch = KnnScratch::new();
        let queries: Vec<Point> = (0..20)
            .map(|i| Point::new((i * 7 % 90) as f64, (i * 13 % 90) as f64))
            .collect();
        for q in &queries {
            t.nearest_neighbors_into(*q, 10, &mut scratch);
        }
        let warm = scratch.capacities();
        for _ in 0..5 {
            for q in &queries {
                t.nearest_neighbors_into(*q, 10, &mut scratch);
            }
            assert_eq!(scratch.capacities(), warm, "knn scratch reallocated");
        }
    }

    #[test]
    fn knn_prunes_nodes() {
        let t = build_grid(100);
        let mut stats = SearchStats::default();
        t.nearest_neighbor(Point::new(5.0, 5.0), &mut stats);
        // Best-first search should not touch every node for k=1.
        assert!(
            (stats.nodes_visited as usize) < t.node_count(),
            "visited {} of {}",
            stats.nodes_visited,
            t.node_count()
        );
    }
}
