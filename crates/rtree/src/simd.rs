//! Lane kernels for the frozen-tree hot loops.
//!
//! The [`FrozenRTree`](crate::FrozenRTree) stores entry rectangles as
//! four SoA coordinate planes precisely so that per-node pruning is a
//! data-parallel compare over `fanout` contiguous `f64` lanes. This
//! module factors that compare into a [`LaneKernel`]:
//!
//! * [`ScalarKernel`] — the reference implementation, always compiled.
//!   Its comparisons are written exactly like the pre-SIMD hot loop
//!   (query operand against plane operand, folded with `&`), so NaN
//!   padding lanes fail every predicate.
//! * `SimdKernel` (x86_64 + `simd` feature) — the same predicates via
//!   explicit `core::arch` intrinsics: SSE2 (baseline on x86_64, no
//!   detection needed) two lanes per op, or AVX four lanes per op
//!   behind a cached `is_x86_feature_detected!` probe. All vector
//!   comparisons are *ordered* (`_CMP_LE_OQ` / `cmplepd`), which — like
//!   the scalar `<=` — is `false` whenever an operand is NaN, so the
//!   padding-lane invariant carries over bit for bit.
//!
//! Every kernel produces identical hit masks and identical k-NN
//! distances (the same IEEE operations in the same order), so
//! traversals stay bit-identical across kernels — results, visit order
//! and [`SearchStats`](crate::SearchStats) counters alike. The
//! differential fuzzer's frozen level pins this down; `DefaultKernel`
//! is whichever kernel the build selects for the public query paths.
//!
//! Masks cover at most 64 lanes (`u64`); callers fall back to plain
//! per-lane loops for larger branching factors.

use rtree_geom::{Point, Rect};

/// A vectorizable predicate kernel over one node's coordinate planes.
///
/// All slices have equal length `n <= 64` for the mask methods; bit `i`
/// of a returned mask is set iff lane `i` satisfies the predicate. NaN
/// lanes never set a bit.
pub(crate) trait LaneKernel {
    /// `WITHIN`: lane rectangle covered by `w`
    /// (`w.min <= lane.min && lane.max <= w.max`, both axes).
    fn mask_within(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64;
    /// `INTERSECTS`: lane rectangle shares at least a point with `w`.
    fn mask_intersects(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64;
    /// `contains_point`: lane rectangle contains `p`.
    fn mask_point(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], p: Point) -> u64;
    /// `min_distance_sq(p)` per lane, written into `out` (same length as
    /// the planes; may exceed 64). Must reproduce
    /// [`Rect::min_distance_sq`] bit for bit for finite lanes.
    fn distances(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], p: Point, out: &mut [f64]);
}

/// Requests a read prefetch of the cache line holding `v` into L1.
/// Purely a latency hint — a no-op on scalar builds and non-x86_64
/// targets — so callers may issue it speculatively with no effect on
/// results, visit order, or counters.
#[inline(always)]
pub(crate) fn prefetch_read<T>(v: &T) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    x86::prefetch(v as *const T as *const i8);
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    let _ = v;
}

/// The reference kernel: scalar comparisons exactly as the paper's
/// `SEARCH` predicates read over the planes.
pub(crate) struct ScalarKernel;

impl LaneKernel for ScalarKernel {
    #[inline]
    fn mask_within(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64 {
        let mut mask = 0u64;
        for lane in 0..x1.len() {
            let hit = (w.min_x <= x1[lane])
                & (w.min_y <= y1[lane])
                & (x2[lane] <= w.max_x)
                & (y2[lane] <= w.max_y);
            mask |= (hit as u64) << lane;
        }
        mask
    }

    #[inline]
    fn mask_intersects(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64 {
        let mut mask = 0u64;
        for lane in 0..x1.len() {
            let hit = (x1[lane] <= w.max_x)
                & (w.min_x <= x2[lane])
                & (y1[lane] <= w.max_y)
                & (w.min_y <= y2[lane]);
            mask |= (hit as u64) << lane;
        }
        mask
    }

    #[inline]
    fn mask_point(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], p: Point) -> u64 {
        let mut mask = 0u64;
        for lane in 0..x1.len() {
            let hit = (x1[lane] <= p.x) & (p.x <= x2[lane]) & (y1[lane] <= p.y) & (p.y <= y2[lane]);
            mask |= (hit as u64) << lane;
        }
        mask
    }

    #[inline]
    fn distances(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], p: Point, out: &mut [f64]) {
        for lane in 0..out.len() {
            // `Rect::min_distance_sq` unrolled over the planes.
            let dx = (x1[lane] - p.x).max(0.0).max(p.x - x2[lane]);
            let dy = (y1[lane] - p.y).max(0.0).max(p.y - y2[lane]);
            out[lane] = dx * dx + dy * dy;
        }
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) use x86::SimdKernel as DefaultKernel;

#[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
pub(crate) use ScalarKernel as DefaultKernel;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod x86 {
    //! The x86_64 kernels. SSE2 is part of the x86_64 baseline, so the
    //! two-lane paths need no feature detection; the four-lane AVX
    //! paths run behind a cached CPUID probe. All loads are unaligned
    //! (`loadu`): the planes are plain `Vec<f64>` allocations.

    use super::{LaneKernel, ScalarKernel};
    use core::arch::x86_64::{
        __m128d, __m256d, _mm256_add_pd, _mm256_and_pd, _mm256_cmp_pd, _mm256_loadu_pd,
        _mm256_max_pd, _mm256_movemask_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _mm_add_pd, _mm_and_pd, _mm_cmple_pd, _mm_loadu_pd, _mm_max_pd,
        _mm_movemask_pd, _mm_mul_pd, _mm_prefetch, _mm_set1_pd, _mm_storeu_pd, _mm_sub_pd,
        _CMP_LE_OQ, _MM_HINT_T0,
    };
    use rtree_geom::{Point, Rect};
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached AVX availability: 0 = unprobed, 1 = yes, 2 = no.
    static AVX: AtomicU8 = AtomicU8::new(0);

    #[inline]
    fn has_avx() -> bool {
        match AVX.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("avx");
                AVX.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }

    /// `_MM_HINT_T0` read prefetch. The intrinsic is an `unsafe fn` but
    /// PREFETCHT0 is architecturally defined to never fault, on any
    /// address.
    #[inline(always)]
    pub(super) fn prefetch(ptr: *const i8) {
        // Safety: prefetch instructions cannot fault.
        unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr) }
    }

    /// The dispatching kernel used by default builds.
    pub(crate) struct SimdKernel;

    /// `and`-fold of two two-lane ordered `<=` comparisons.
    #[inline(always)]
    unsafe fn le2(a0: __m128d, b0: __m128d, a1: __m128d, b1: __m128d) -> __m128d {
        _mm_and_pd(_mm_cmple_pd(a0, b0), _mm_cmple_pd(a1, b1))
    }

    /// `and`-fold of two four-lane ordered `<=` comparisons.
    #[inline(always)]
    unsafe fn le4(a0: __m256d, b0: __m256d, a1: __m256d, b1: __m256d) -> __m256d {
        _mm256_and_pd(
            _mm256_cmp_pd::<_CMP_LE_OQ>(a0, b0),
            _mm256_cmp_pd::<_CMP_LE_OQ>(a1, b1),
        )
    }

    /// Which window predicate a mask pass evaluates.
    #[derive(Clone, Copy, PartialEq)]
    enum Pred {
        Within,
        Intersects,
        Point,
    }

    /// Generic mask pass: AVX for the four-lane body when available,
    /// SSE2 for pairs, [`ScalarKernel`] for a trailing odd lane. For
    /// `Pred::Point` the query is `(p.x, p.y, p.x, p.y)` packed into a
    /// `Rect`-shaped carrier.
    #[inline]
    fn mask_pass(pred: Pred, x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64 {
        let n = x1.len();
        let mut mask = 0u64;
        let mut lane = 0usize;
        if n >= 4 && has_avx() {
            // Safety: AVX presence probed; loads bounds-guarded inside.
            mask = unsafe { mask_avx(pred, x1, y1, x2, y2, w, &mut lane) };
        }
        // Safety: SSE2 is unconditionally available on x86_64; loads
        // stay in bounds while lane + 2 <= n.
        unsafe {
            let qminx = _mm_set1_pd(w.min_x);
            let qminy = _mm_set1_pd(w.min_y);
            let qmaxx = _mm_set1_pd(w.max_x);
            let qmaxy = _mm_set1_pd(w.max_y);
            while lane + 2 <= n {
                let vx1 = _mm_loadu_pd(x1.as_ptr().add(lane));
                let vy1 = _mm_loadu_pd(y1.as_ptr().add(lane));
                let vx2 = _mm_loadu_pd(x2.as_ptr().add(lane));
                let vy2 = _mm_loadu_pd(y2.as_ptr().add(lane));
                let hit = match pred {
                    Pred::Within => {
                        _mm_and_pd(le2(qminx, vx1, qminy, vy1), le2(vx2, qmaxx, vy2, qmaxy))
                    }
                    // Point reuses the intersects shape with min == max.
                    Pred::Intersects | Pred::Point => {
                        _mm_and_pd(le2(vx1, qmaxx, vy1, qmaxy), le2(qminx, vx2, qminy, vy2))
                    }
                };
                mask |= (_mm_movemask_pd(hit) as u64) << lane;
                lane += 2;
            }
        }
        if lane < n {
            let (tx1, ty1, tx2, ty2) = (&x1[lane..], &y1[lane..], &x2[lane..], &y2[lane..]);
            let tail = match pred {
                Pred::Within => ScalarKernel::mask_within(tx1, ty1, tx2, ty2, w),
                Pred::Intersects => ScalarKernel::mask_intersects(tx1, ty1, tx2, ty2, w),
                Pred::Point => {
                    ScalarKernel::mask_point(tx1, ty1, tx2, ty2, Point::new(w.min_x, w.min_y))
                }
            };
            mask |= tail << lane;
        }
        mask
    }

    /// Four lanes per op while at least four remain.
    #[target_feature(enable = "avx")]
    unsafe fn mask_avx(
        pred: Pred,
        x1: &[f64],
        y1: &[f64],
        x2: &[f64],
        y2: &[f64],
        w: &Rect,
        lane: &mut usize,
    ) -> u64 {
        let n = x1.len();
        let qminx = _mm256_set1_pd(w.min_x);
        let qminy = _mm256_set1_pd(w.min_y);
        let qmaxx = _mm256_set1_pd(w.max_x);
        let qmaxy = _mm256_set1_pd(w.max_y);
        let mut mask = 0u64;
        while *lane + 4 <= n {
            let vx1 = _mm256_loadu_pd(x1.as_ptr().add(*lane));
            let vy1 = _mm256_loadu_pd(y1.as_ptr().add(*lane));
            let vx2 = _mm256_loadu_pd(x2.as_ptr().add(*lane));
            let vy2 = _mm256_loadu_pd(y2.as_ptr().add(*lane));
            let hit = match pred {
                Pred::Within => {
                    _mm256_and_pd(le4(qminx, vx1, qminy, vy1), le4(vx2, qmaxx, vy2, qmaxy))
                }
                Pred::Intersects | Pred::Point => {
                    _mm256_and_pd(le4(vx1, qmaxx, vy1, qmaxy), le4(qminx, vx2, qminy, vy2))
                }
            };
            mask |= (_mm256_movemask_pd(hit) as u64) << *lane;
            *lane += 4;
        }
        mask
    }

    impl LaneKernel for SimdKernel {
        #[inline]
        fn mask_within(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64 {
            mask_pass(Pred::Within, x1, y1, x2, y2, w)
        }

        #[inline]
        fn mask_intersects(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], w: &Rect) -> u64 {
            mask_pass(Pred::Intersects, x1, y1, x2, y2, w)
        }

        #[inline]
        fn mask_point(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], p: Point) -> u64 {
            // A point is a degenerate window: intersects(lane, [p, p])
            // is exactly contains_point(lane, p).
            let w = Rect {
                min_x: p.x,
                min_y: p.y,
                max_x: p.x,
                max_y: p.y,
            };
            mask_pass(Pred::Point, x1, y1, x2, y2, &w)
        }

        #[inline]
        fn distances(x1: &[f64], y1: &[f64], x2: &[f64], y2: &[f64], p: Point, out: &mut [f64]) {
            let n = out.len();
            let mut lane = 0usize;
            if n >= 4 && has_avx() {
                // Safety: probed; bounds guarded inside.
                unsafe { distances_avx(x1, y1, x2, y2, p, out, &mut lane) }
            }
            // Safety: SSE2 baseline; lane + 2 <= n keeps loads in bounds.
            unsafe {
                let px = _mm_set1_pd(p.x);
                let py = _mm_set1_pd(p.y);
                let zero = _mm_set1_pd(0.0);
                while lane + 2 <= n {
                    let dx = _mm_max_pd(
                        _mm_max_pd(_mm_sub_pd(_mm_loadu_pd(x1.as_ptr().add(lane)), px), zero),
                        _mm_sub_pd(px, _mm_loadu_pd(x2.as_ptr().add(lane))),
                    );
                    let dy = _mm_max_pd(
                        _mm_max_pd(_mm_sub_pd(_mm_loadu_pd(y1.as_ptr().add(lane)), py), zero),
                        _mm_sub_pd(py, _mm_loadu_pd(y2.as_ptr().add(lane))),
                    );
                    let d = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
                    _mm_storeu_pd(out.as_mut_ptr().add(lane), d);
                    lane += 2;
                }
            }
            if lane < n {
                ScalarKernel::distances(
                    &x1[lane..n],
                    &y1[lane..n],
                    &x2[lane..n],
                    &y2[lane..n],
                    p,
                    &mut out[lane..n],
                );
            }
        }
    }

    /// Four distances at a time. `_mm256_max_pd(a, b)` returns `b` when
    /// `a` is NaN — the same orientation as the scalar
    /// `(lane - p).max(0.0)` — and the `max(±0.0, ∓0.0)` ambiguity is
    /// erased by the squaring, so results match
    /// [`Rect::min_distance_sq`] bit for bit on every lane the
    /// traversal reads (valid lanes are finite).
    #[target_feature(enable = "avx")]
    unsafe fn distances_avx(
        x1: &[f64],
        y1: &[f64],
        x2: &[f64],
        y2: &[f64],
        p: Point,
        out: &mut [f64],
        lane: &mut usize,
    ) {
        let n = out.len();
        let px = _mm256_set1_pd(p.x);
        let py = _mm256_set1_pd(p.y);
        let zero = _mm256_set1_pd(0.0);
        while *lane + 4 <= n {
            let dx = _mm256_max_pd(
                _mm256_max_pd(
                    _mm256_sub_pd(_mm256_loadu_pd(x1.as_ptr().add(*lane)), px),
                    zero,
                ),
                _mm256_sub_pd(px, _mm256_loadu_pd(x2.as_ptr().add(*lane))),
            );
            let dy = _mm256_max_pd(
                _mm256_max_pd(
                    _mm256_sub_pd(_mm256_loadu_pd(y1.as_ptr().add(*lane)), py),
                    zero,
                ),
                _mm256_sub_pd(py, _mm256_loadu_pd(y2.as_ptr().add(*lane))),
            );
            let d = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
            _mm256_storeu_pd(out.as_mut_ptr().add(*lane), d);
            *lane += 4;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Random planes with NaN padding sprinkled in.
    fn random_planes(rng: &mut StdRng, n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut x1 = Vec::with_capacity(n);
        let mut y1 = Vec::with_capacity(n);
        let mut x2 = Vec::with_capacity(n);
        let mut y2 = Vec::with_capacity(n);
        for _ in 0..n {
            if rng.gen_bool(0.2) {
                x1.push(f64::NAN);
                y1.push(f64::NAN);
                x2.push(f64::NAN);
                y2.push(f64::NAN);
            } else {
                let ax = rng.gen_range(-100.0..100.0);
                let ay = rng.gen_range(-100.0..100.0);
                let w = rng.gen_range(0.0..30.0);
                let h = rng.gen_range(0.0..30.0);
                x1.push(ax);
                y1.push(ay);
                x2.push(ax + w);
                y2.push(ay + h);
            }
        }
        (x1, y1, x2, y2)
    }

    /// Regular, degenerate, infinite, and NaN query windows (struct
    /// literals: the predicates must stay safe for any bit pattern).
    fn query_windows() -> Vec<Rect> {
        vec![
            Rect::new(-50.0, -50.0, 50.0, 50.0),
            Rect::new(0.0, 0.0, 0.0, 0.0),
            Rect {
                min_x: f64::NEG_INFINITY,
                min_y: f64::NEG_INFINITY,
                max_x: f64::INFINITY,
                max_y: f64::INFINITY,
            },
            Rect {
                min_x: f64::NAN,
                min_y: 0.0,
                max_x: 10.0,
                max_y: 10.0,
            },
            Rect {
                min_x: -10.0,
                min_y: -10.0,
                max_x: f64::NAN,
                max_y: f64::NAN,
            },
        ]
    }

    #[test]
    fn kernels_agree_on_masks_across_widths() {
        let mut rng = StdRng::seed_from_u64(0x51_3D);
        // Odd widths exercise the SSE remainder; >= 4 the AVX path.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64] {
            let (x1, y1, x2, y2) = random_planes(&mut rng, n);
            for w in &query_windows() {
                assert_eq!(
                    DefaultKernel::mask_within(&x1, &y1, &x2, &y2, w),
                    ScalarKernel::mask_within(&x1, &y1, &x2, &y2, w),
                    "within n={n} w={w:?}"
                );
                assert_eq!(
                    DefaultKernel::mask_intersects(&x1, &y1, &x2, &y2, w),
                    ScalarKernel::mask_intersects(&x1, &y1, &x2, &y2, w),
                    "intersects n={n} w={w:?}"
                );
                let p = Point::new(w.min_x, w.min_y);
                assert_eq!(
                    DefaultKernel::mask_point(&x1, &y1, &x2, &y2, p),
                    ScalarKernel::mask_point(&x1, &y1, &x2, &y2, p),
                    "point n={n} p={p:?}"
                );
            }
        }
    }

    #[test]
    fn kernels_agree_on_distances_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(0xD1_57);
        for n in [1usize, 2, 3, 4, 5, 8, 13, 64, 100] {
            // Finite lanes only: distances are read for valid lanes.
            let (mut x1, mut y1, mut x2, mut y2) = random_planes(&mut rng, n);
            for v in [&mut x1, &mut y1, &mut x2, &mut y2] {
                for lane in v.iter_mut() {
                    if lane.is_nan() {
                        *lane = 0.0;
                    }
                }
            }
            let p = Point::new(rng.gen_range(-120.0..120.0), rng.gen_range(-120.0..120.0));
            let mut fast = vec![0.0f64; n];
            let mut reference = vec![0.0f64; n];
            DefaultKernel::distances(&x1, &y1, &x2, &y2, p, &mut fast);
            ScalarKernel::distances(&x1, &y1, &x2, &y2, p, &mut reference);
            for lane in 0..n {
                assert_eq!(
                    fast[lane].to_bits(),
                    reference[lane].to_bits(),
                    "lane {lane} of {n}"
                );
                let r = Rect::new(x1[lane], y1[lane], x2[lane], y2[lane]);
                assert_eq!(reference[lane].to_bits(), r.min_distance_sq(p).to_bits());
            }
        }
    }

    #[test]
    fn mask_predicates_match_rect_methods() {
        let mut rng = StdRng::seed_from_u64(0xAB_CD);
        let (x1, y1, x2, y2) = random_planes(&mut rng, 32);
        let w = Rect::new(-20.0, -20.0, 40.0, 40.0);
        let p = Point::new(3.0, 4.0);
        let within = DefaultKernel::mask_within(&x1, &y1, &x2, &y2, &w);
        let inter = DefaultKernel::mask_intersects(&x1, &y1, &x2, &y2, &w);
        let at = DefaultKernel::mask_point(&x1, &y1, &x2, &y2, p);
        for lane in 0..32 {
            if x1[lane].is_nan() {
                assert_eq!(within >> lane & 1, 0, "NaN lane {lane} matched within");
                assert_eq!(inter >> lane & 1, 0, "NaN lane {lane} matched intersects");
                assert_eq!(at >> lane & 1, 0, "NaN lane {lane} matched point");
                continue;
            }
            let r = Rect::new(x1[lane], y1[lane], x2[lane], y2[lane]);
            assert_eq!(within >> lane & 1 == 1, r.covered_by(&w), "lane {lane}");
            assert_eq!(inter >> lane & 1 == 1, r.intersects(&w), "lane {lane}");
            assert_eq!(at >> lane & 1 == 1, r.contains_point(p), "lane {lane}");
        }
    }
}
