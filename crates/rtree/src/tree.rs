//! The R-tree proper: an arena of nodes plus a root pointer.

use crate::config::RTreeConfig;
use crate::node::{Child, ItemId, Node, NodeId};
use rtree_geom::Rect;

/// A two-dimensional R-tree index from rectangles to [`ItemId`]s.
///
/// Nodes live in an arena (`Vec`), mirroring the paper's
/// `RTREE: array [1..MaxNodes] of NODE`; [`NodeId`]s are arena indices.
/// The tree can be grown dynamically with Guttman's
/// [`insert`](RTree::insert)/[`remove`](RTree::remove), or constructed
/// bottom-up by the packing algorithms of `packed-rtree-core` through
/// [`builder::BottomUpBuilder`](crate::builder::BottomUpBuilder).
///
/// # Example
///
/// ```
/// use rtree_index::{RTree, RTreeConfig, ItemId, SearchStats};
/// use rtree_geom::{Point, Rect};
///
/// let mut tree = RTree::new(RTreeConfig::PAPER);
/// for (i, &(x, y)) in [(1.0, 1.0), (2.0, 5.0), (9.0, 9.0)].iter().enumerate() {
///     tree.insert(Rect::from_point(Point::new(x, y)), ItemId(i as u64));
/// }
/// let mut stats = SearchStats::default();
/// let hits = tree.search_within(&Rect::new(0.0, 0.0, 3.0, 6.0), &mut stats);
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RTree {
    nodes: Vec<Option<Node>>,
    free: Vec<NodeId>,
    root: NodeId,
    config: RTreeConfig,
    len: usize,
}

impl RTree {
    /// Creates an empty tree (root is an empty leaf).
    pub fn new(config: RTreeConfig) -> Self {
        let mut tree = RTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NodeId(0),
            config,
            len: 0,
        };
        let root = tree.alloc(Node::new(0));
        tree.root = root;
        tree
    }

    /// The tree's configuration.
    #[inline]
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// The root node id (`RTREE[1]` in the paper's convention).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of indexed items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no items are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Depth `D` as reported in Table 1: the level of the root, i.e. the
    /// number of edges from root to leaf. A tree whose root is a leaf has
    /// depth 0.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.node(self.root).level
    }

    /// Total number of live nodes `N` (Table 1), including the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// MBR of everything in the tree, `None` when empty.
    pub fn mbr(&self) -> Option<Rect> {
        self.node(self.root).mbr()
    }

    /// Borrows a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live node of this tree.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        self.nodes[id.index()]
            .as_ref()
            .expect("stale or foreign NodeId")
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut Node {
        self.nodes[id.index()]
            .as_mut()
            .expect("stale or foreign NodeId")
    }

    /// An arena with no nodes at all, used by the bottom-up builder so
    /// that packed construction can hand out dense, contiguous ids from
    /// slot 0. The `root` field is a placeholder until `set_root`.
    pub(crate) fn empty_arena(config: RTreeConfig) -> Self {
        RTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NodeId(0),
            config,
            len: 0,
        }
    }

    /// Reserves `count` contiguous arena slots and returns the first
    /// index. The slots start out empty and must all be filled (via
    /// [`arena_slice_mut`](Self::arena_slice_mut)) before the tree is
    /// used; requires an empty free list so the range is truly dense.
    pub(crate) fn arena_reserve(&mut self, count: usize) -> u32 {
        assert!(
            self.free.is_empty(),
            "arena_reserve on a tree with recycled slots"
        );
        let start = u32::try_from(self.nodes.len()).expect("arena overflow");
        u32::try_from(self.nodes.len() + count).expect("arena overflow");
        self.nodes.resize_with(self.nodes.len() + count, || None);
        start
    }

    /// Mutable view of a reserved slot range, for bulk (possibly
    /// parallel, via `split_at_mut`) node materialization.
    pub(crate) fn arena_slice_mut(&mut self, start: u32, len: usize) -> &mut [Option<Node>] {
        &mut self.nodes[start as usize..start as usize + len]
    }

    pub(crate) fn alloc(&mut self, node: Node) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = Some(node);
            id
        } else {
            let id = NodeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
            self.nodes.push(Some(node));
            id
        }
    }

    pub(crate) fn dealloc(&mut self, id: NodeId) -> Node {
        let node = self.nodes[id.index()].take().expect("double free");
        self.free.push(id);
        node
    }

    pub(crate) fn set_root(&mut self, id: NodeId) {
        self.root = id;
    }

    pub(crate) fn len_mut(&mut self) -> &mut usize {
        &mut self.len
    }

    /// Iterates over all live `(NodeId, &Node)` pairs in arena order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|n| (NodeId(i as u32), n)))
    }

    /// MBRs of all leaf nodes — the rectangles over which the paper defines
    /// coverage and overlap (§3.1). Empty leaves (only the empty root) are
    /// skipped.
    pub fn leaf_mbrs(&self) -> Vec<Rect> {
        self.iter_nodes()
            .filter(|(_, n)| n.is_leaf())
            .filter_map(|(_, n)| n.mbr())
            .collect()
    }

    /// All `(mbr, item)` pairs at the leaf level, in traversal order.
    pub fn items(&self) -> Vec<(Rect, ItemId)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            for e in &node.entries {
                match e.child {
                    Child::Node(c) => stack.push(c),
                    Child::Item(item) => out.push((e.mbr, item)),
                }
            }
        }
        out
    }

    /// Checks every structural invariant, returning a description of the
    /// first violation.
    ///
    /// Invariants checked:
    /// 1. the root is live; every child pointer refers to a live node;
    /// 2. every node's entry count is ≤ `M`, and ≥ `m` for non-roots
    ///    (unless the tree was built by a packer, which fills nodes fully
    ///    except possibly one per level — packed trees still satisfy this
    ///    because leftovers are ≥ 1 and merged when below `m` is allowed
    ///    only for the root path; see `builder`);
    /// 3. each internal entry's MBR equals the MBR of its child node
    ///    (minimality, not mere containment);
    /// 4. levels decrease by exactly 1 along every edge, leaves at level 0;
    /// 5. every arena slot is reachable exactly once (no leaks, no sharing);
    /// 6. the recorded item count matches the number of leaf entries.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_with(true)
    }

    /// Like [`validate`](RTree::validate) but with the minimum-fill check
    /// optional; packed trees may legitimately leave the *last* node of a
    /// level under-filled ("one partially-filled node for leftover entries
    /// per level", §3.3).
    pub fn validate_with(&self, check_min_fill: bool) -> Result<(), String> {
        let mut seen = vec![false; self.nodes.len()];
        let mut leaf_items = 0usize;
        let mut stack = vec![(self.root, None::<Rect>, true)];
        while let Some((id, expected_mbr, is_root)) = stack.pop() {
            let slot = self
                .nodes
                .get(id.index())
                .ok_or_else(|| format!("{id}: out of bounds"))?;
            let node = slot
                .as_ref()
                .ok_or_else(|| format!("{id}: freed node reachable"))?;
            if seen[id.index()] {
                return Err(format!("{id}: reachable twice"));
            }
            seen[id.index()] = true;

            if node.len() > self.config.max_entries {
                return Err(format!(
                    "{id}: {} entries > M={}",
                    node.len(),
                    self.config.max_entries
                ));
            }
            if !is_root && check_min_fill && node.len() < self.config.min_entries {
                return Err(format!(
                    "{id}: {} entries < m={}",
                    node.len(),
                    self.config.min_entries
                ));
            }
            if is_root && node.level > 0 && node.len() < 2 {
                return Err(format!("{id}: non-leaf root with {} entries", node.len()));
            }
            if let Some(expect) = expected_mbr {
                match node.mbr() {
                    Some(actual) if actual == expect => {}
                    Some(actual) => {
                        return Err(format!(
                            "{id}: parent entry mbr {expect} != node mbr {actual}"
                        ))
                    }
                    None => return Err(format!("{id}: empty non-root node")),
                }
            }
            for e in &node.entries {
                match e.child {
                    Child::Node(c) => {
                        let child = self
                            .nodes
                            .get(c.index())
                            .and_then(|s| s.as_ref())
                            .ok_or_else(|| format!("{id}: dangling child {c}"))?;
                        if node.level != child.level + 1 {
                            return Err(format!(
                                "{id} (level {}) -> {c} (level {}): levels must step by 1",
                                node.level, child.level
                            ));
                        }
                        stack.push((c, Some(e.mbr), false));
                    }
                    Child::Item(_) => {
                        if !node.is_leaf() {
                            return Err(format!(
                                "{id}: item entry in non-leaf (level {})",
                                node.level
                            ));
                        }
                        leaf_items += 1;
                    }
                }
            }
        }
        // Leak check.
        for (i, slot) in self.nodes.iter().enumerate() {
            if slot.is_some() && !seen[i] {
                return Err(format!("n{i}: live but unreachable (leak)"));
            }
        }
        if leaf_items != self.len {
            return Err(format!(
                "item count {} != recorded len {}",
                leaf_items, self.len
            ));
        }
        Ok(())
    }

    /// Asserts validity, panicking with the violation (test helper).
    #[track_caller]
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid R-tree: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Entry;
    use rtree_geom::Point;

    #[test]
    fn empty_tree_is_valid() {
        let t = RTree::new(RTreeConfig::PAPER);
        t.assert_valid();
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.mbr(), None);
        assert!(t.leaf_mbrs().is_empty());
    }

    #[test]
    fn arena_recycles_slots() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        let id = t.alloc(Node::new(0));
        assert_eq!(t.node_count(), 2);
        t.dealloc(id);
        assert_eq!(t.node_count(), 1);
        let id2 = t.alloc(Node::new(0));
        assert_eq!(id, id2, "freed slot should be reused");
        t.dealloc(id2);
    }

    #[test]
    #[should_panic(expected = "stale or foreign NodeId")]
    fn stale_node_id_panics() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        let id = t.alloc(Node::new(0));
        t.dealloc(id);
        let _ = t.node(id);
    }

    #[test]
    fn validate_catches_wrong_parent_mbr() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        // Hand-build: root(level 1) -> leaf with one item, but lie about
        // the parent MBR.
        let mut leaf = Node::new(0);
        leaf.entries.push(Entry::item(
            Rect::from_point(Point::new(1.0, 1.0)),
            ItemId(0),
        ));
        leaf.entries.push(Entry::item(
            Rect::from_point(Point::new(2.0, 2.0)),
            ItemId(1),
        ));
        let leaf_id = t.alloc(leaf);
        let mut leaf2 = Node::new(0);
        leaf2.entries.push(Entry::item(
            Rect::from_point(Point::new(5.0, 5.0)),
            ItemId(2),
        ));
        leaf2.entries.push(Entry::item(
            Rect::from_point(Point::new(6.0, 6.0)),
            ItemId(3),
        ));
        let leaf2_id = t.alloc(leaf2);
        let old_root = t.root();
        t.dealloc(old_root);
        let mut root = Node::new(1);
        root.entries
            .push(Entry::node(Rect::new(0.0, 0.0, 9.0, 9.0), leaf_id)); // too big
        root.entries
            .push(Entry::node(Rect::new(5.0, 5.0, 6.0, 6.0), leaf2_id));
        let root_id = t.alloc(root);
        t.set_root(root_id);
        *t.len_mut() = 4;
        let err = t.validate().unwrap_err();
        assert!(err.contains("mbr"), "unexpected error: {err}");
    }
}
