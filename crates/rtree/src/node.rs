//! R-tree nodes and entries.
//!
//! Mirrors the paper's PASCAL declarations (§3):
//!
//! ```text
//! type ENTRY = record  X1,X2,Y1,Y2: integer; POINTER: integer  end;
//!      NODE  = record  CLASS: (leaf, non_leaf);
//!                      DESC: array [1..4] of ENTRY;
//!                      VALID: integer  end;
//! ```
//!
//! with `DESC`/`VALID` replaced by a `Vec<Entry>` and `CLASS` generalized to
//! a `level` (0 = leaf) so that intermediate levels can be reasoned about
//! during packing and condensing.

use rtree_geom::Rect;
use std::fmt;

/// Identifier of a node within an [`RTree`](crate::RTree)'s arena.
///
/// Node ids are indices into the arena `Vec` — the direct analogue of the
/// paper's `RTREE: array [1..MaxNodes] of NODE` subscripts. Slots are
/// recycled after deletion, so ids are only meaningful for live nodes of
/// the tree that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Opaque identifier of an indexed data object — the paper's
/// "tuple-identifier" pointing to a tuple of a pictorial relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ItemId(pub u64);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What an entry points at: a child node (`non_leaf` entries) or a data
/// item (`leaf` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Child {
    /// Pointer to a descendant node (`CLASS = non_leaf`).
    Node(NodeId),
    /// Pointer to a database tuple (`CLASS = leaf`).
    Item(ItemId),
}

impl Child {
    /// The node id, panicking if this is an item pointer.
    #[inline]
    pub fn expect_node(self) -> NodeId {
        match self {
            Child::Node(id) => id,
            Child::Item(item) => panic!("expected node child, found item {item}"),
        }
    }

    /// The item id, panicking if this is a node pointer.
    #[inline]
    pub fn expect_item(self) -> ItemId {
        match self {
            Child::Item(id) => id,
            Child::Node(node) => panic!("expected item child, found node {node}"),
        }
    }
}

/// One slot of a node: a minimal bounding rectangle plus a pointer
/// (the paper's `ENTRY`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Minimal rectangle bounding everything reachable through `child`.
    pub mbr: Rect,
    /// The descendant node or data item.
    pub child: Child,
}

impl Entry {
    /// Leaf entry pointing at a data item.
    #[inline]
    pub fn item(mbr: Rect, item: ItemId) -> Self {
        Entry {
            mbr,
            child: Child::Item(item),
        }
    }

    /// Internal entry pointing at a child node.
    #[inline]
    pub fn node(mbr: Rect, node: NodeId) -> Self {
        Entry {
            mbr,
            child: Child::Node(node),
        }
    }
}

/// An R-tree node: a level tag plus up to `M` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Height above the leaves: 0 for leaf nodes (the paper's
    /// `CLASS = leaf`), positive for internal nodes.
    pub level: u32,
    /// The valid entries (the paper's `DESC[1..VALID]`).
    pub entries: Vec<Entry>,
}

impl Node {
    /// Creates an empty node at the given level.
    pub fn new(level: u32) -> Self {
        Node {
            level,
            entries: Vec::new(),
        }
    }

    /// `true` if this is a leaf (`CLASS = leaf`).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Number of valid entries (the paper's `VALID`).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the node has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Minimal rectangle bounding all entries, or `None` for an empty node.
    pub fn mbr(&self) -> Option<Rect> {
        Rect::mbr_of_rects(self.entries.iter().map(|e| e.mbr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_classification() {
        assert!(Node::new(0).is_leaf());
        assert!(!Node::new(1).is_leaf());
    }

    #[test]
    fn node_mbr_is_union_of_entries() {
        let mut n = Node::new(0);
        assert_eq!(n.mbr(), None);
        n.entries
            .push(Entry::item(Rect::new(0.0, 0.0, 1.0, 1.0), ItemId(1)));
        n.entries
            .push(Entry::item(Rect::new(3.0, -1.0, 4.0, 0.5), ItemId(2)));
        assert_eq!(n.mbr(), Some(Rect::new(0.0, -1.0, 4.0, 1.0)));
        assert_eq!(n.len(), 2);
    }

    #[test]
    fn child_accessors() {
        let n = Child::Node(NodeId(3));
        assert_eq!(n.expect_node(), NodeId(3));
        let i = Child::Item(ItemId(7));
        assert_eq!(i.expect_item(), ItemId(7));
    }

    #[test]
    #[should_panic(expected = "expected node child")]
    fn expect_node_on_item_panics() {
        Child::Item(ItemId(1)).expect_node();
    }

    #[test]
    #[should_panic(expected = "expected item child")]
    fn expect_item_on_node_panics() {
        Child::Node(NodeId(1)).expect_item();
    }
}
