//! Traversal iterators over tree structure.

use crate::node::{Child, ItemId, Node, NodeId};
use crate::tree::RTree;
use rtree_geom::Rect;

/// Depth-first iterator over `(NodeId, &Node)` starting at the root.
pub struct DfsNodes<'a> {
    tree: &'a RTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for DfsNodes<'a> {
    type Item = (NodeId, &'a Node);

    fn next(&mut self) -> Option<Self::Item> {
        let id = self.stack.pop()?;
        let node = self.tree.node(id);
        for e in node.entries.iter().rev() {
            if let Child::Node(c) = e.child {
                self.stack.push(c);
            }
        }
        Some((id, node))
    }
}

/// Iterator over all leaf entries `(Rect, ItemId)` in depth-first order.
pub struct LeafEntries<'a> {
    nodes: DfsNodes<'a>,
    current: std::slice::Iter<'a, crate::node::Entry>,
}

impl<'a> Iterator for LeafEntries<'a> {
    type Item = (Rect, ItemId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            for e in self.current.by_ref() {
                if let Child::Item(item) = e.child {
                    return Some((e.mbr, item));
                }
            }
            let (_, node) = self.nodes.next()?;
            if node.is_leaf() {
                self.current = node.entries.iter();
            }
        }
    }
}

impl RTree {
    /// Depth-first traversal of all nodes.
    pub fn dfs(&self) -> DfsNodes<'_> {
        DfsNodes {
            tree: self,
            stack: vec![self.root()],
        }
    }

    /// Iterates over all leaf entries in depth-first order.
    pub fn leaf_entries(&self) -> LeafEntries<'_> {
        LeafEntries {
            nodes: self.dfs(),
            current: [].iter(),
        }
    }

    /// Collects the node MBRs at a given level (level 0 = leaves).
    pub fn mbrs_at_level(&self, level: u32) -> Vec<Rect> {
        self.dfs()
            .filter(|(_, n)| n.level == level)
            .filter_map(|(_, n)| n.mbr())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use rtree_geom::Point;

    fn build(n: u64) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..n {
            let x = (i * 17 % 101) as f64;
            let y = (i * 29 % 97) as f64;
            t.insert(Rect::from_point(Point::new(x, y)), ItemId(i));
        }
        t
    }

    #[test]
    fn dfs_visits_every_node_once() {
        let t = build(100);
        let visited: Vec<NodeId> = t.dfs().map(|(id, _)| id).collect();
        assert_eq!(visited.len(), t.node_count());
        let mut dedup = visited.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), visited.len());
    }

    #[test]
    fn leaf_entries_yields_every_item() {
        let t = build(73);
        let mut items: Vec<u64> = t.leaf_entries().map(|(_, id)| id.0).collect();
        items.sort_unstable();
        assert_eq!(items, (0..73).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_entries_on_empty_tree() {
        let t = RTree::new(RTreeConfig::PAPER);
        assert_eq!(t.leaf_entries().count(), 0);
    }

    #[test]
    fn mbrs_at_level_partition_by_level() {
        let t = build(100);
        let mut total = 0;
        for level in 0..=t.depth() {
            total += t.mbrs_at_level(level).len();
        }
        assert_eq!(total, t.node_count());
        assert_eq!(t.mbrs_at_level(t.depth()).len(), 1, "one root");
    }
}
