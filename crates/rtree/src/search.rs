//! Direct spatial search — the paper's recursive `SEARCH` procedure (§3.1)
//! and its variants.

use crate::knn::KnnScratch;
use crate::node::{Child, ItemId, NodeId};
use crate::stats::SearchStats;
use crate::tree::RTree;
use rtree_geom::{Point, Rect};

/// Reusable traversal state for the allocation-free query paths.
///
/// Window and point queries need two growable buffers: the explicit
/// descent stack and the result list. Owning them in a scratch value and
/// passing it to the `*_into` query methods means the buffers are
/// allocated once and reused — steady-state queries touch the heap only
/// while the buffers are still growing toward the workload's high-water
/// mark, after which they allocate nothing.
///
/// The scratch also embeds a [`KnnScratch`] so one per-worker value covers
/// the whole allocation-free query surface (window, point and k-NN).
#[derive(Debug, Default, Clone)]
pub struct SearchScratch {
    pub(crate) stack: Vec<NodeId>,
    pub(crate) out: Vec<ItemId>,
    knn: KnnScratch,
}

impl SearchScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// The hits of the most recent `*_into` query.
    pub fn hits(&self) -> &[ItemId] {
        &self.out
    }

    /// Current capacity of the two buffers `(stack, results)` — stable
    /// capacities across queries demonstrate the zero-allocation steady
    /// state.
    pub fn capacities(&self) -> (usize, usize) {
        (self.stack.capacity(), self.out.capacity())
    }

    /// The embedded k-NN scratch, for routing `nearest_neighbors_into`
    /// through the same per-worker state as the window paths.
    pub fn knn(&mut self) -> &mut KnnScratch {
        &mut self.knn
    }
}

/// Where traversal counters go. The statistics-free implementation is a
/// set of empty inlined methods, so the fast path pays nothing for the
/// instrumentation the paper's Table 1 experiments need.
pub(crate) trait Sink {
    fn query(&mut self) {}
    fn node(&mut self, _is_leaf: bool) {}
    fn item(&mut self) {}
}

/// The no-op sink of the `*_into` fast paths.
pub(crate) struct NoStats;

impl Sink for NoStats {}

impl Sink for SearchStats {
    #[inline]
    fn query(&mut self) {
        self.queries += 1;
    }

    #[inline]
    fn node(&mut self, is_leaf: bool) {
        self.nodes_visited += 1;
        if is_leaf {
            self.leaf_nodes_visited += 1;
        }
    }

    #[inline]
    fn item(&mut self) {
        self.items_reported += 1;
    }
}

impl RTree {
    /// The paper's `SEARCH` (§3.1): descend every entry whose MBR
    /// `INTERSECTS` the target window; at the leaves report entries
    /// `WITHIN` (entirely inside) the window.
    ///
    /// Answers "list all points and regions within target window" — the
    /// query form behind PSQL's `loc covered-by ⟨window⟩`.
    pub fn search_within(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.window_traverse(window, true, &mut stack, stats, &mut |item, _| {
            out.push(item)
        });
        out
    }

    /// Reports leaf entries whose MBR intersects the window (the common
    /// window-query semantics; PSQL's `overlapping`/`covering` operators
    /// refine this candidate set with exact geometry).
    pub fn search_intersecting(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.window_traverse(window, false, &mut stack, stats, &mut |item, _| {
            out.push(item)
        });
        out
    }

    /// [`search_within`](Self::search_within) without statistics or
    /// per-call allocation: results land in (and are borrowed from) the
    /// reusable `scratch`.
    pub fn search_within_into<'s>(
        &self,
        window: &Rect,
        scratch: &'s mut SearchScratch,
    ) -> &'s [ItemId] {
        self.window_into(window, true, scratch)
    }

    /// [`search_intersecting`](Self::search_intersecting) without
    /// statistics or per-call allocation.
    pub fn search_intersecting_into<'s>(
        &self,
        window: &Rect,
        scratch: &'s mut SearchScratch,
    ) -> &'s [ItemId] {
        self.window_into(window, false, scratch)
    }

    fn window_into<'s>(
        &self,
        window: &Rect,
        within: bool,
        scratch: &'s mut SearchScratch,
    ) -> &'s [ItemId] {
        let SearchScratch { stack, out, .. } = scratch;
        out.clear();
        self.window_traverse(window, within, stack, &mut NoStats, &mut |item, _| {
            out.push(item)
        });
        out
    }

    /// Streaming variant: invokes `visit(item, mbr)` for every leaf entry
    /// matching the window under the chosen semantics (`within = true`
    /// reproduces the paper's `SEARCH`).
    pub fn search_visit<F: FnMut(ItemId, Rect)>(
        &self,
        window: &Rect,
        within: bool,
        stats: &mut SearchStats,
        visit: &mut F,
    ) {
        let mut stack = Vec::new();
        self.window_traverse(window, within, &mut stack, stats, visit);
    }

    /// The paper's `SEARCH` as one iterative loop over an explicit stack.
    ///
    /// Children are pushed in reverse entry order, so nodes are visited
    /// in exactly the order the recursive formulation visits them (and
    /// all counters agree with it).
    fn window_traverse<S: Sink, F: FnMut(ItemId, Rect)>(
        &self,
        window: &Rect,
        within: bool,
        stack: &mut Vec<NodeId>,
        sink: &mut S,
        visit: &mut F,
    ) {
        sink.query();
        stack.clear();
        stack.push(self.root());
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            sink.node(node.is_leaf());
            if node.is_leaf() {
                for e in &node.entries {
                    let hit = if within {
                        e.mbr.covered_by(window) // the paper's WITHIN
                    } else {
                        e.mbr.intersects(window)
                    };
                    if hit {
                        sink.item();
                        visit(e.child.expect_item(), e.mbr);
                    }
                }
            } else {
                for e in node.entries.iter().rev() {
                    if e.mbr.intersects(window) {
                        // the paper's INTERSECTS pruning
                        stack.push(e.child.expect_node());
                    }
                }
            }
        }
    }

    /// The Table 1 query: "Is point (x, y) contained in the database?"
    ///
    /// Descends only entries whose MBR contains the point and reports leaf
    /// entries whose MBR contains it. Returns all matching items (multiple
    /// items may share a location).
    pub fn point_query(&self, p: Point, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.point_traverse(p, &mut stack, stats, &mut out);
        out
    }

    /// [`point_query`](Self::point_query) without statistics or per-call
    /// allocation.
    pub fn point_query_into<'s>(&self, p: Point, scratch: &'s mut SearchScratch) -> &'s [ItemId] {
        let SearchScratch { stack, out, .. } = scratch;
        out.clear();
        self.point_traverse(p, stack, &mut NoStats, out);
        out
    }

    fn point_traverse<S: Sink>(
        &self,
        p: Point,
        stack: &mut Vec<NodeId>,
        sink: &mut S,
        out: &mut Vec<ItemId>,
    ) {
        sink.query();
        stack.clear();
        stack.push(self.root());
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            sink.node(node.is_leaf());
            for e in &node.entries {
                if e.mbr.contains_point(p) {
                    match e.child {
                        Child::Node(c) => stack.push(c),
                        Child::Item(item) => {
                            sink.item();
                            out.push(item);
                        }
                    }
                }
            }
        }
    }

    /// `true` if any indexed rectangle contains the point — the Boolean
    /// reading of the Table 1 query, with early exit.
    pub fn contains_point(&self, p: Point, stats: &mut SearchStats) -> bool {
        stats.queries += 1;
        let mut stack = vec![self.root()];
        let mut found = false;
        while let Some(id) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.node(id);
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                if node.entries.iter().any(|e| e.mbr.contains_point(p)) {
                    found = true;
                    break;
                }
            } else {
                for e in &node.entries {
                    if e.mbr.contains_point(p) {
                        stack.push(e.child.expect_node());
                    }
                }
            }
        }
        if found {
            stats.items_reported += 1;
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn build(points: &[(f64, f64)]) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for (i, &(x, y)) in points.iter().enumerate() {
            t.insert(pt(x, y), ItemId(i as u64));
        }
        t
    }

    #[test]
    fn empty_tree_search() {
        let t = RTree::new(RTreeConfig::PAPER);
        let mut stats = SearchStats::default();
        assert!(t
            .search_within(&Rect::new(0.0, 0.0, 10.0, 10.0), &mut stats)
            .is_empty());
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.nodes_visited, 1); // root is still visited
    }

    #[test]
    fn within_vs_intersecting_on_rects() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(Rect::new(0.0, 0.0, 4.0, 4.0), ItemId(0)); // straddles window
        t.insert(Rect::new(1.0, 1.0, 2.0, 2.0), ItemId(1)); // inside window
        let window = Rect::new(0.5, 0.5, 3.0, 3.0);
        let mut stats = SearchStats::default();
        let within = t.search_within(&window, &mut stats);
        assert_eq!(within, vec![ItemId(1)]);
        let intersecting = t.search_intersecting(&window, &mut stats);
        assert_eq!(intersecting.len(), 2);
    }

    #[test]
    fn search_matches_brute_force() {
        let points: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let f = i as f64;
                ((f * 37.7) % 100.0, (f * 91.3) % 100.0)
            })
            .collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        for q in 0..50 {
            let f = q as f64;
            let x0 = (f * 13.3) % 80.0;
            let y0 = (f * 7.9) % 80.0;
            let window = Rect::new(x0, y0, x0 + 20.0, y0 + 20.0);
            let mut got = t.search_within(&window, &mut stats);
            got.sort();
            let mut expect: Vec<ItemId> = points
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| window.contains_point(Point::new(x, y)))
                .map(|(i, _)| ItemId(i as u64))
                .collect();
            expect.sort();
            assert_eq!(got, expect, "window {window}");
        }
        assert_eq!(stats.queries, 50);
        assert!(stats.nodes_visited >= 50);
    }

    #[test]
    fn point_query_finds_exact_points() {
        let points: Vec<(f64, f64)> = (0..100)
            .map(|i| ((i % 10) as f64, (i / 10) as f64))
            .collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        let hits = t.point_query(Point::new(3.0, 7.0), &mut stats);
        assert_eq!(hits, vec![ItemId(73)]);
        assert!(t.contains_point(Point::new(3.0, 7.0), &mut stats));
        assert!(!t.contains_point(Point::new(3.5, 7.5), &mut stats));
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn whole_space_window_returns_everything() {
        let points: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, (i * 3 % 17) as f64)).collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        let all = t.search_within(&Rect::new(-1.0, -1.0, 100.0, 100.0), &mut stats);
        assert_eq!(all.len(), 64);
        // Full-space query visits every node.
        assert_eq!(stats.nodes_visited as usize, t.node_count());
    }

    #[test]
    fn visit_streams_mbrs() {
        let t = build(&[(1.0, 1.0), (2.0, 2.0), (50.0, 50.0)]);
        let mut stats = SearchStats::default();
        let mut seen = Vec::new();
        t.search_visit(
            &Rect::new(0.0, 0.0, 10.0, 10.0),
            true,
            &mut stats,
            &mut |item, mbr| seen.push((item, mbr)),
        );
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|(_, m)| m.max_x <= 10.0));
    }

    #[test]
    fn fast_paths_match_stats_paths() {
        let points: Vec<(f64, f64)> = (0..300)
            .map(|i| {
                let f = i as f64;
                ((f * 37.7) % 100.0, (f * 91.3) % 100.0)
            })
            .collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        let mut scratch = SearchScratch::new();
        for q in 0..40 {
            let f = q as f64;
            let x0 = (f * 13.3) % 70.0;
            let y0 = (f * 7.9) % 70.0;
            let window = Rect::new(x0, y0, x0 + 25.0, y0 + 25.0);
            assert_eq!(
                t.search_within_into(&window, &mut scratch),
                t.search_within(&window, &mut stats).as_slice()
            );
            assert_eq!(
                t.search_intersecting_into(&window, &mut scratch),
                t.search_intersecting(&window, &mut stats).as_slice()
            );
            let p = Point::new(x0, y0);
            assert_eq!(
                t.point_query_into(p, &mut scratch),
                t.point_query(p, &mut stats).as_slice()
            );
        }
    }

    #[test]
    fn scratch_buffers_stop_growing() {
        // After a warm-up pass over the whole workload, repeating the
        // same queries must leave both scratch capacities untouched —
        // the zero-allocation steady state.
        let points: Vec<(f64, f64)> = (0..500)
            .map(|i| ((i % 25) as f64 * 4.0, (i / 25) as f64 * 5.0))
            .collect();
        let t = build(&points);
        let mut scratch = SearchScratch::new();
        let windows: Vec<Rect> = (0..30)
            .map(|q| {
                let f = q as f64;
                Rect::new(f, f, f + 30.0, f + 30.0)
            })
            .collect();
        for w in &windows {
            t.search_within_into(w, &mut scratch);
        }
        let warm = scratch.capacities();
        for _ in 0..5 {
            for w in &windows {
                t.search_within_into(w, &mut scratch);
                t.search_intersecting_into(w, &mut scratch);
            }
            assert_eq!(scratch.capacities(), warm, "scratch reallocated");
        }
    }

    #[test]
    fn scratch_hits_reflect_last_query() {
        let t = build(&[(1.0, 1.0), (2.0, 2.0), (50.0, 50.0)]);
        let mut scratch = SearchScratch::new();
        t.search_within_into(&Rect::new(0.0, 0.0, 10.0, 10.0), &mut scratch);
        assert_eq!(scratch.hits().len(), 2);
        t.search_within_into(&Rect::new(40.0, 40.0, 60.0, 60.0), &mut scratch);
        assert_eq!(scratch.hits(), &[ItemId(2)]);
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let t = build(&[(1.0, 1.0), (2.0, 2.0)]);
        let mut stats = SearchStats::default();
        for _ in 0..10 {
            t.point_query(Point::new(1.0, 1.0), &mut stats);
        }
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.avg_nodes_visited(), stats.nodes_visited as f64 / 10.0);
    }
}
