//! Direct spatial search — the paper's recursive `SEARCH` procedure (§3.1)
//! and its variants.

use crate::node::{Child, ItemId, NodeId};
use crate::stats::SearchStats;
use crate::tree::RTree;
use rtree_geom::{Point, Rect};

impl RTree {
    /// The paper's `SEARCH` (§3.1): descend every entry whose MBR
    /// `INTERSECTS` the target window; at the leaves report entries
    /// `WITHIN` (entirely inside) the window.
    ///
    /// Answers "list all points and regions within target window" — the
    /// query form behind PSQL's `loc covered-by ⟨window⟩`.
    pub fn search_within(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.search_window_impl(window, true, stats, &mut |item, _| out.push(item));
        out
    }

    /// Reports leaf entries whose MBR intersects the window (the common
    /// window-query semantics; PSQL's `overlapping`/`covering` operators
    /// refine this candidate set with exact geometry).
    pub fn search_intersecting(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        self.search_window_impl(window, false, stats, &mut |item, _| out.push(item));
        out
    }

    /// Streaming variant: invokes `visit(item, mbr)` for every leaf entry
    /// matching the window under the chosen semantics (`within = true`
    /// reproduces the paper's `SEARCH`).
    pub fn search_visit<F: FnMut(ItemId, Rect)>(
        &self,
        window: &Rect,
        within: bool,
        stats: &mut SearchStats,
        visit: &mut F,
    ) {
        self.search_window_impl(window, within, stats, visit);
    }

    fn search_window_impl<F: FnMut(ItemId, Rect)>(
        &self,
        window: &Rect,
        within: bool,
        stats: &mut SearchStats,
        visit: &mut F,
    ) {
        stats.queries += 1;
        self.search_rec(self.root(), window, within, stats, visit);
    }

    fn search_rec<F: FnMut(ItemId, Rect)>(
        &self,
        id: NodeId,
        window: &Rect,
        within: bool,
        stats: &mut SearchStats,
        visit: &mut F,
    ) {
        stats.nodes_visited += 1;
        let node = self.node(id);
        if node.is_leaf() {
            stats.leaf_nodes_visited += 1;
            for e in &node.entries {
                let hit = if within {
                    e.mbr.covered_by(window) // the paper's WITHIN
                } else {
                    e.mbr.intersects(window)
                };
                if hit {
                    stats.items_reported += 1;
                    visit(e.child.expect_item(), e.mbr);
                }
            }
        } else {
            for e in &node.entries {
                if e.mbr.intersects(window) {
                    // the paper's INTERSECTS pruning
                    self.search_rec(e.child.expect_node(), window, within, stats, visit);
                }
            }
        }
    }

    /// The Table 1 query: "Is point (x, y) contained in the database?"
    ///
    /// Descends only entries whose MBR contains the point and reports leaf
    /// entries whose MBR contains it. Returns all matching items (multiple
    /// items may share a location).
    pub fn point_query(&self, p: Point, stats: &mut SearchStats) -> Vec<ItemId> {
        stats.queries += 1;
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.node(id);
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
            }
            for e in &node.entries {
                if e.mbr.contains_point(p) {
                    match e.child {
                        Child::Node(c) => stack.push(c),
                        Child::Item(item) => {
                            stats.items_reported += 1;
                            out.push(item);
                        }
                    }
                }
            }
        }
        out
    }

    /// `true` if any indexed rectangle contains the point — the Boolean
    /// reading of the Table 1 query, with early exit.
    pub fn contains_point(&self, p: Point, stats: &mut SearchStats) -> bool {
        stats.queries += 1;
        let mut stack = vec![self.root()];
        let mut found = false;
        while let Some(id) = stack.pop() {
            stats.nodes_visited += 1;
            let node = self.node(id);
            if node.is_leaf() {
                stats.leaf_nodes_visited += 1;
                if node.entries.iter().any(|e| e.mbr.contains_point(p)) {
                    found = true;
                    break;
                }
            } else {
                for e in &node.entries {
                    if e.mbr.contains_point(p) {
                        stack.push(e.child.expect_node());
                    }
                }
            }
        }
        out_stats(stats, found);
        found
    }
}

#[inline]
fn out_stats(stats: &mut SearchStats, found: bool) {
    if found {
        stats.items_reported += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn build(points: &[(f64, f64)]) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for (i, &(x, y)) in points.iter().enumerate() {
            t.insert(pt(x, y), ItemId(i as u64));
        }
        t
    }

    #[test]
    fn empty_tree_search() {
        let t = RTree::new(RTreeConfig::PAPER);
        let mut stats = SearchStats::default();
        assert!(t.search_within(&Rect::new(0.0, 0.0, 10.0, 10.0), &mut stats).is_empty());
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.nodes_visited, 1); // root is still visited
    }

    #[test]
    fn within_vs_intersecting_on_rects() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(Rect::new(0.0, 0.0, 4.0, 4.0), ItemId(0)); // straddles window
        t.insert(Rect::new(1.0, 1.0, 2.0, 2.0), ItemId(1)); // inside window
        let window = Rect::new(0.5, 0.5, 3.0, 3.0);
        let mut stats = SearchStats::default();
        let within = t.search_within(&window, &mut stats);
        assert_eq!(within, vec![ItemId(1)]);
        let intersecting = t.search_intersecting(&window, &mut stats);
        assert_eq!(intersecting.len(), 2);
    }

    #[test]
    fn search_matches_brute_force() {
        let points: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let f = i as f64;
                ((f * 37.7) % 100.0, (f * 91.3) % 100.0)
            })
            .collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        for q in 0..50 {
            let f = q as f64;
            let x0 = (f * 13.3) % 80.0;
            let y0 = (f * 7.9) % 80.0;
            let window = Rect::new(x0, y0, x0 + 20.0, y0 + 20.0);
            let mut got = t.search_within(&window, &mut stats);
            got.sort();
            let mut expect: Vec<ItemId> = points
                .iter()
                .enumerate()
                .filter(|(_, &(x, y))| window.contains_point(Point::new(x, y)))
                .map(|(i, _)| ItemId(i as u64))
                .collect();
            expect.sort();
            assert_eq!(got, expect, "window {window}");
        }
        assert_eq!(stats.queries, 50);
        assert!(stats.nodes_visited >= 50);
    }

    #[test]
    fn point_query_finds_exact_points() {
        let points: Vec<(f64, f64)> = (0..100)
            .map(|i| ((i % 10) as f64, (i / 10) as f64))
            .collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        let hits = t.point_query(Point::new(3.0, 7.0), &mut stats);
        assert_eq!(hits, vec![ItemId(73)]);
        assert!(t.contains_point(Point::new(3.0, 7.0), &mut stats));
        assert!(!t.contains_point(Point::new(3.5, 7.5), &mut stats));
        assert_eq!(stats.queries, 3);
    }

    #[test]
    fn whole_space_window_returns_everything() {
        let points: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, (i * 3 % 17) as f64)).collect();
        let t = build(&points);
        let mut stats = SearchStats::default();
        let all = t.search_within(&Rect::new(-1.0, -1.0, 100.0, 100.0), &mut stats);
        assert_eq!(all.len(), 64);
        // Full-space query visits every node.
        assert_eq!(stats.nodes_visited as usize, t.node_count());
    }

    #[test]
    fn visit_streams_mbrs() {
        let t = build(&[(1.0, 1.0), (2.0, 2.0), (50.0, 50.0)]);
        let mut stats = SearchStats::default();
        let mut seen = Vec::new();
        t.search_visit(
            &Rect::new(0.0, 0.0, 10.0, 10.0),
            true,
            &mut stats,
            &mut |item, mbr| seen.push((item, mbr)),
        );
        assert_eq!(seen.len(), 2);
        assert!(seen.iter().all(|(_, m)| m.max_x <= 10.0));
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let t = build(&[(1.0, 1.0), (2.0, 2.0)]);
        let mut stats = SearchStats::default();
        for _ in 0..10 {
            t.point_query(Point::new(1.0, 1.0), &mut stats);
        }
        assert_eq!(stats.queries, 10);
        assert_eq!(stats.avg_nodes_visited(), stats.nodes_visited as f64 / 10.0);
    }
}
