//! Guttman's DELETE: FindLeaf, CondenseTree, orphan re-insertion.
//!
//! §3.4 observes that "INSERT (and analogously DELETE) and PACK can
//! complement each other … in the creation and maintenance of dynamic
//! R-trees"; this module provides the DELETE half.

use crate::node::{Child, Entry, ItemId, NodeId};
use crate::tree::RTree;
use rtree_geom::Rect;

impl RTree {
    /// Removes the entry with exactly this `mbr` and `item`, returning
    /// `true` if it was found.
    ///
    /// Implements Guttman's DELETE: locate the hosting leaf by descending
    /// only entries whose MBR covers `mbr` (FindLeaf); remove the entry;
    /// then CondenseTree — under-filled ancestors are dissolved and their
    /// surviving entries re-inserted at their original level; finally a
    /// single-child non-leaf root is shortened.
    pub fn remove(&mut self, mbr: Rect, item: ItemId) -> bool {
        // FindLeaf with an explicit stack of (node, next-child-index) so
        // the successful path is available for CondenseTree.
        let Some(path) = self.find_leaf_path(&mbr, item) else {
            return false;
        };
        let leaf = *path.last().expect("path includes leaf");
        let node = self.node_mut(leaf);
        let pos = node
            .entries
            .iter()
            .position(|e| e.mbr == mbr && e.child == Child::Item(item))
            .expect("find_leaf_path verified presence");
        node.entries.remove(pos);
        *self.len_mut() -= 1;

        self.condense_tree(&path);
        true
    }

    /// Returns root→leaf node path to a leaf containing the entry, or
    /// `None`.
    fn find_leaf_path(&self, mbr: &Rect, item: ItemId) -> Option<Vec<NodeId>> {
        let mut path = vec![self.root()];
        self.find_leaf_rec(self.root(), mbr, item, &mut path)
            .then_some(path)
    }

    fn find_leaf_rec(&self, id: NodeId, mbr: &Rect, item: ItemId, path: &mut Vec<NodeId>) -> bool {
        let node = self.node(id);
        if node.is_leaf() {
            return node
                .entries
                .iter()
                .any(|e| e.mbr == *mbr && e.child == Child::Item(item));
        }
        for e in &node.entries {
            if e.mbr.covers(mbr) {
                let child = e.child.expect_node();
                path.push(child);
                if self.find_leaf_rec(child, mbr, item, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// CondenseTree over the recorded deletion path.
    fn condense_tree(&mut self, path: &[NodeId]) {
        // Walk from the leaf up to (but excluding) the root.
        let mut eliminated: Vec<(u32, Vec<Entry>)> = Vec::new();
        for window in (1..path.len()).rev() {
            let node_id = path[window];
            let parent_id = path[window - 1];
            let child_idx = self
                .node(parent_id)
                .entries
                .iter()
                .position(|e| e.child == Child::Node(node_id))
                .expect("path parent/child link");
            if self.node(node_id).len() < self.config().min_entries {
                // Eliminate the node; stash its entries for re-insertion.
                self.node_mut(parent_id).entries.remove(child_idx);
                let node = self.dealloc(node_id);
                if !node.entries.is_empty() {
                    eliminated.push((node.level, node.entries));
                }
            } else {
                // Tighten the parent's MBR.
                let mbr = self.node(node_id).mbr().expect("non-empty after check");
                self.node_mut(parent_id).entries[child_idx].mbr = mbr;
            }
        }

        // Re-insert orphaned entries at their original level so non-leaf
        // orphans re-attach whole subtrees. Leaf entries do not re-count
        // the item total (remove already adjusted it).
        for (level, entries) in eliminated {
            for entry in entries {
                // The tree may have shrunk below the orphan's level; in
                // that degenerate case re-insert the subtree's leaf
                // entries instead.
                if level <= self.depth() {
                    self.insert_entry_at_level(entry, level);
                } else {
                    self.reinsert_subtree_items(entry);
                }
            }
        }

        // Shorten a root with a single child.
        while !self.node(self.root()).is_leaf() && self.node(self.root()).len() == 1 {
            let old_root = self.root();
            let child = self.node(old_root).entries[0].child.expect_node();
            self.dealloc(old_root);
            self.set_root(child);
        }
    }

    /// Tears a subtree entry down to leaf entries and inserts each.
    fn reinsert_subtree_items(&mut self, entry: Entry) {
        match entry.child {
            Child::Item(_) => self.insert_entry_at_level(entry, 0),
            Child::Node(id) => {
                let node = self.dealloc(id);
                for e in node.entries {
                    self.reinsert_subtree_items(e);
                }
            }
        }
    }

    /// Removes an item by rectangle, ignoring which duplicate is taken —
    /// convenience over [`remove`](RTree::remove) for callers that know
    /// the pair is unique.
    pub fn remove_item(&mut self, mbr: Rect, item: ItemId) -> bool {
        self.remove(mbr, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::stats::SearchStats;
    use rtree_geom::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn scatter(n: u64) -> Vec<(Rect, ItemId)> {
        let mut x = 42u64;
        (0..n)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let px = (x >> 33) as f64 % 1000.0;
                let py = (x >> 13) as f64 % 1000.0;
                (pt(px, py), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn remove_missing_returns_false() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(pt(1.0, 1.0), ItemId(0));
        assert!(!t.remove(pt(2.0, 2.0), ItemId(0)));
        assert!(!t.remove(pt(1.0, 1.0), ItemId(9)));
        assert_eq!(t.len(), 1);
        t.assert_valid();
    }

    #[test]
    fn insert_then_remove_single() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(pt(1.0, 1.0), ItemId(0));
        assert!(t.remove(pt(1.0, 1.0), ItemId(0)));
        assert!(t.is_empty());
        t.assert_valid();
    }

    #[test]
    fn remove_all_in_insertion_order() {
        let items = scatter(120);
        let mut t = RTree::new(RTreeConfig::PAPER);
        for &(r, id) in &items {
            t.insert(r, id);
        }
        for &(r, id) in &items {
            assert!(t.remove(r, id), "missing {id}");
            t.assert_valid();
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn remove_all_in_reverse_order() {
        let items = scatter(120);
        let mut t = RTree::new(RTreeConfig::PAPER);
        for &(r, id) in &items {
            t.insert(r, id);
        }
        for &(r, id) in items.iter().rev() {
            assert!(t.remove(r, id));
        }
        t.assert_valid();
        assert!(t.is_empty());
    }

    #[test]
    fn interleaved_insert_remove() {
        let items = scatter(200);
        let mut t = RTree::new(RTreeConfig::PAPER);
        for chunk in items.chunks(20) {
            for &(r, id) in chunk {
                t.insert(r, id);
            }
            // Remove half of what we just added.
            for &(r, id) in &chunk[..10] {
                assert!(t.remove(r, id));
            }
            t.assert_valid();
        }
        assert_eq!(t.len(), 100);
        // Every surviving item is still findable.
        let mut stats = SearchStats::default();
        for chunk in items.chunks(20) {
            for &(r, id) in &chunk[10..] {
                let found = t.search_intersecting(&r, &mut stats);
                assert!(found.contains(&id), "{id} lost");
            }
        }
    }

    #[test]
    fn remove_one_of_duplicates() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..10 {
            t.insert(pt(5.0, 5.0), ItemId(i));
        }
        assert!(t.remove(pt(5.0, 5.0), ItemId(3)));
        assert!(!t.remove(pt(5.0, 5.0), ItemId(3)));
        assert_eq!(t.len(), 9);
        t.assert_valid();
    }

    /// Delete-heavy randomized stress across seeds, branching factors and
    /// split policies, running the full invariant validator after every
    /// single removal. Exercises the CondenseTree edge cases: internal
    /// orphans re-attached at their original level, orphans whose level
    /// exceeds the (shrunken) tree depth, duplicate rectangles, and
    /// cascading eliminations from consecutive deletes.
    #[test]
    fn condense_orphan_stress_randomized() {
        use crate::config::SplitPolicy;
        let configs = [
            RTreeConfig::new(3, 1, SplitPolicy::Linear),
            RTreeConfig::new(4, 2, SplitPolicy::Quadratic),
            RTreeConfig::new(5, 2, SplitPolicy::Exhaustive),
            RTreeConfig::PAPER,
        ];
        for &seed in &[3u64, 17, 1985] {
            for config in configs {
                let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut next = move || {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    s >> 33
                };
                let ctx = format!("seed {seed}, config {config:?}");
                let mut t = RTree::new(config);
                let mut live: Vec<(Rect, ItemId)> = Vec::new();
                let mut next_id = 0u64;
                for step in 0..600 {
                    // Grow first, then bias hard toward deletion so the
                    // tree repeatedly shrinks through underflow cascades.
                    let insert_pct = if step < 250 { 65 } else { 25 };
                    if live.is_empty() || next() % 100 < insert_pct {
                        // 1-in-4 inserts duplicate an existing rectangle,
                        // so FindLeaf must disambiguate by item id.
                        let rect = if !live.is_empty() && next() % 4 == 0 {
                            live[next() as usize % live.len()].0
                        } else {
                            pt((next() % 1000) as f64, (next() % 1000) as f64)
                        };
                        let id = ItemId(next_id);
                        next_id += 1;
                        t.insert(rect, id);
                        live.push((rect, id));
                    } else {
                        let (rect, id) = live.swap_remove(next() as usize % live.len());
                        assert!(t.remove(rect, id), "{ctx}: step {step}: {id:?} missing");
                        t.assert_valid();
                    }
                    assert_eq!(t.len(), live.len(), "{ctx}: step {step}");
                }
                // Drain to empty, validating the depth-shrink path (incl.
                // orphans above the new depth) on every removal.
                while let Some((rect, id)) = live.pop() {
                    assert!(t.remove(rect, id), "{ctx}: drain: {id:?} missing");
                    t.assert_valid();
                }
                assert!(t.is_empty(), "{ctx}");
                assert_eq!(t.depth(), 0, "{ctx}");
            }
        }
    }

    #[test]
    fn condense_shrinks_depth() {
        let items = scatter(200);
        let mut t = RTree::new(RTreeConfig::PAPER);
        for &(r, id) in &items {
            t.insert(r, id);
        }
        let deep = t.depth();
        for &(r, id) in &items[..190] {
            assert!(t.remove(r, id));
        }
        t.assert_valid();
        assert!(t.depth() < deep, "depth should shrink after mass deletion");
    }
}
