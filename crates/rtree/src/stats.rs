//! Search accounting — the `A` column of Table 1.

use std::ops::AddAssign;

/// Counters accumulated by every search operation.
///
/// The paper's experiment reports `A`, "the average number of nodes visited
/// during 1000 random search queries"; accumulate one `SearchStats` across
/// the batch and read [`SearchStats::avg_nodes_visited`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Total R-tree nodes visited (root counts once per query).
    pub nodes_visited: u64,
    /// Of those, leaf nodes.
    pub leaf_nodes_visited: u64,
    /// Leaf entries reported as results.
    pub items_reported: u64,
    /// Number of queries accumulated into these counters.
    pub queries: u64,
}

impl SearchStats {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }

    /// Average nodes visited per query — Table 1's `A`.
    pub fn avg_nodes_visited(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.nodes_visited as f64 / self.queries as f64
        }
    }

    /// Folds another traversal's work into these counters **without**
    /// counting an extra logical query: a query that searches two
    /// structures (frozen main tree + delta tree, DESIGN.md §14) is
    /// still one query, its `A` cost the sum of both traversals.
    pub fn absorb_traversal(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaf_nodes_visited += other.leaf_nodes_visited;
        self.items_reported += other.items_reported;
    }

    /// Average results per query.
    pub fn avg_items_reported(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.items_reported as f64 / self.queries as f64
        }
    }
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, rhs: SearchStats) {
        self.nodes_visited += rhs.nodes_visited;
        self.leaf_nodes_visited += rhs.leaf_nodes_visited;
        self.items_reported += rhs.items_reported;
        self.queries += rhs.queries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages() {
        let mut s = SearchStats::default();
        assert_eq!(s.avg_nodes_visited(), 0.0);
        s.nodes_visited = 30;
        s.items_reported = 5;
        s.queries = 10;
        assert_eq!(s.avg_nodes_visited(), 3.0);
        assert_eq!(s.avg_items_reported(), 0.5);
    }

    #[test]
    fn accumulation() {
        let mut a = SearchStats {
            nodes_visited: 1,
            leaf_nodes_visited: 1,
            items_reported: 0,
            queries: 1,
        };
        let b = SearchStats {
            nodes_visited: 3,
            leaf_nodes_visited: 2,
            items_reported: 4,
            queries: 1,
        };
        a += b;
        assert_eq!(a.nodes_visited, 4);
        assert_eq!(a.queries, 2);
        a.reset();
        assert_eq!(a, SearchStats::default());
    }
}
