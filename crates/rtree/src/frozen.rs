//! A frozen (immutable, cache-conscious) compilation of a packed R-tree.
//!
//! The pointer tree ([`RTree`]) is logically optimal after PACK but
//! physically naive: every node owns its own `Vec<Entry>`, so a query
//! chases one heap pointer per node and the MBR comparisons load
//! interleaved `Rect` fields. [`FrozenRTree`] recompiles the same tree
//! into a single contiguous arena:
//!
//! * **Breadth-first, level-major node order.** Node 0 is the root, its
//!   children follow, then theirs — a query's working set is a dense
//!   prefix of the arena, and "node id" degenerates to an array index.
//! * **Node-major SoA coordinate planes.** Entry rectangles are split
//!   into four `f64` planes (`x1/y1/x2/y2` = min-x/min-y/max-x/max-y)
//!   of `fanout` lanes each, and a node's four planes are stored as
//!   one contiguous block (`[x1 lanes][y1 lanes][x2 lanes][y2 lanes]`,
//!   `4 * fanout` doubles). Window pruning is a branchless min/max
//!   compare over contiguous lanes that vectorizes, and one node visit
//!   touches two-to-three cache lines (128 bytes at `M = 4`) instead
//!   of the four half-used lines that tree-wide planes would cost —
//!   the memory-bound batch engine lives off that difference.
//! * **NaN padding lanes.** Nodes with fewer than `fanout` entries pad
//!   the remaining lanes with `NaN` rectangles. Every query predicate in
//!   the engine (`INTERSECTS`, `WITHIN`, `contains_point`) is a pure
//!   conjunction of `<=`/`>=` comparisons, and every comparison against
//!   NaN is `false` — so padding lanes can never match *any* window,
//!   including NaN or degenerate ones, and never perturb a counter.
//!   (`±inf` sentinels would not be safe: an infinite query window
//!   would match them.)
//!
//! Traversal order is replicated bit-for-bit from the pointer tree —
//! window search pushes children in reverse lane order, point search
//! forward, k-NN uses the identical best-first heap discipline — so a
//! frozen tree returns **identical result sequences and identical
//! [`SearchStats`] counters**, verified by the `rtree-oracle`
//! differential fuzzer's fourth execution level.

use crate::config::RTreeConfig;
use crate::knn::{HeapEntry, HeapKind, KnnScratch, Neighbor};
use crate::node::{Child, ItemId, NodeId};
use crate::search::{NoStats, SearchScratch, Sink};
use crate::simd::{DefaultKernel, LaneKernel, ScalarKernel};
use crate::stats::SearchStats;
use crate::tree::RTree;
use rtree_geom::{Point, Rect};
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// What one entry of a node fed to [`FrozenRTree::from_nodes`] points at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FrozenChild {
    /// A child node, by the caller's node key (arena index, page id, …).
    Node(u64),
    /// A data item (leaf entries only).
    Item(ItemId),
}

/// An immutable R-tree compiled into one contiguous SoA arena.
///
/// Built from a pointer [`RTree`] with [`freeze`](FrozenRTree::freeze)
/// (or from any node store with [`from_nodes`](FrozenRTree::from_nodes));
/// answers the full query surface with results and counters bit-identical
/// to the source tree.
#[derive(Debug, Clone)]
pub struct FrozenRTree {
    config: RTreeConfig,
    /// Lanes per node — the branching factor `M` the tree was built with.
    fanout: usize,
    /// Nodes in the arena (BFS order, root first).
    num_nodes: u32,
    /// BFS index of the first leaf; level-major order puts all leaves in
    /// one contiguous suffix, so `index >= leaf_start` is the leaf test.
    leaf_start: u32,
    depth: u32,
    len: usize,
    /// Node-major SoA coordinate storage: node `n` owns the block
    /// `[n * 4 * fanout, (n + 1) * 4 * fanout)`, laid out as its four
    /// `fanout`-lane planes `[x1][y1][x2][y2]`; unused lanes hold NaN.
    coords: Vec<f64>,
    /// Per-lane pointer plane: child BFS index for internal lanes, raw
    /// [`ItemId`] for leaf lanes, 0 for padding.
    ids: Vec<u64>,
    /// Valid entries per node (the paper's `VALID`).
    counts: Vec<u32>,
}

/// Structural equality, bitwise on coordinates.
///
/// Derived `PartialEq` would be wrong here: padding lanes hold NaN, and
/// `NaN != NaN` would make every tree unequal to itself. Comparing
/// coordinate bits instead gives the equality the differential suites
/// actually assert — two arenas are equal iff every plane, pointer and
/// count is bit-for-bit the same.
impl PartialEq for FrozenRTree {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.fanout == other.fanout
            && self.num_nodes == other.num_nodes
            && self.leaf_start == other.leaf_start
            && self.depth == other.depth
            && self.len == other.len
            && self.ids == other.ids
            && self.counts == other.counts
            && self.coords.len() == other.coords.len()
            && self
                .coords
                .iter()
                .zip(&other.coords)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

impl Eq for FrozenRTree {}

/// One level's staging buffers inside a [`FrozenBuilder`].
struct FrozenLevel {
    /// Node-major SoA planes, `4 * fanout` doubles per node, NaN padded.
    coords: Vec<f64>,
    /// `fanout` lanes per node: within-child-level position for internal
    /// lanes, raw item id for leaf lanes, 0 for padding.
    ids: Vec<u64>,
    counts: Vec<u32>,
    /// Caller key → within-level position, for resolving parent lanes.
    key_to_pos: HashMap<u64, u32>,
}

impl FrozenLevel {
    fn new() -> Self {
        FrozenLevel {
            coords: Vec::new(),
            ids: Vec::new(),
            counts: Vec::new(),
            key_to_pos: HashMap::new(),
        }
    }

    fn node_count(&self) -> usize {
        self.counts.len()
    }
}

/// Incremental, bottom-up construction of a [`FrozenRTree`] arena —
/// the streaming counterpart of [`FrozenRTree::from_nodes`].
///
/// External bulk loaders emit nodes level by level, leaves first and the
/// root last, with each parent's entries referencing children already
/// emitted. That is exactly the order this builder accepts: every
/// [`push_node`](Self::push_node) resolves its child keys immediately
/// (so nothing but flat SoA buffers is retained), and
/// [`finish`](Self::finish) stacks the levels root-first — which for a
/// height-balanced tree *is* the breadth-first order `from_nodes`
/// produces, because a level's emission order equals the order its
/// parents reference it. The result is therefore bit-identical to
/// freezing the equivalent pointer tree, without materializing one.
pub struct FrozenBuilder {
    config: RTreeConfig,
    fanout: usize,
    /// `levels[l]` stages tree level `l` (0 = leaves).
    levels: Vec<FrozenLevel>,
}

impl FrozenBuilder {
    /// Starts an empty arena for trees built under `config`.
    pub fn new(config: RTreeConfig) -> Self {
        FrozenBuilder {
            fanout: config.max_entries,
            config,
            levels: Vec::new(),
        }
    }

    /// Appends one node at tree `level` (0 = leaf) under the caller's
    /// `key`. Entries referencing [`FrozenChild::Node`] keys must name
    /// nodes already pushed at `level - 1`; nodes within a level must be
    /// pushed in sibling order (the order their parents will list them).
    ///
    /// # Panics
    ///
    /// Panics if the node holds more than the branching factor's entries,
    /// if `key` repeats within the level, if `level` skips ahead of the
    /// levels seen so far, or if a child key is unknown.
    pub fn push_node(&mut self, level: u32, key: u64, entries: &[(Rect, FrozenChild)]) {
        let l = level as usize;
        assert!(
            l <= self.levels.len(),
            "level {level} pushed before level {}",
            self.levels.len()
        );
        assert!(
            entries.len() <= self.fanout,
            "node {key} holds {} entries > branching factor {}",
            entries.len(),
            self.fanout
        );
        if l == self.levels.len() {
            self.levels.push(FrozenLevel::new());
        }
        // Split borrow: the child level is immutable while this level
        // grows.
        let (below, this) = self.levels.split_at_mut(l);
        let buf = &mut this[0];
        let pos = buf.node_count() as u32;
        let prev = buf.key_to_pos.insert(key, pos);
        assert!(
            prev.is_none(),
            "node key {key} pushed twice at level {level}"
        );
        buf.counts.push(entries.len() as u32);
        let base = buf.coords.len();
        buf.coords.resize(base + 4 * self.fanout, f64::NAN);
        for (lane, &(mbr, _)) in entries.iter().enumerate() {
            buf.coords[base + lane] = mbr.min_x;
            buf.coords[base + self.fanout + lane] = mbr.min_y;
            buf.coords[base + 2 * self.fanout + lane] = mbr.max_x;
            buf.coords[base + 3 * self.fanout + lane] = mbr.max_y;
        }
        let id_base = buf.ids.len();
        buf.ids.resize(id_base + self.fanout, 0);
        for (lane, &(_, child)) in entries.iter().enumerate() {
            buf.ids[id_base + lane] = match child {
                FrozenChild::Node(k) => {
                    assert!(l > 0, "leaf node {key} references child node {k}");
                    *below[l - 1]
                        .key_to_pos
                        .get(&k)
                        .unwrap_or_else(|| panic!("node {key}: unknown child key {k}"))
                        as u64
                }
                FrozenChild::Item(item) => item.0,
            };
        }
    }

    /// Seals the arena. `len` is the number of indexed items (the leaf
    /// entry total the caller streamed).
    ///
    /// # Panics
    ///
    /// Panics if no node was pushed or the topmost level holds more than
    /// one node (no root).
    pub fn finish(self, len: usize) -> FrozenRTree {
        let FrozenBuilder {
            config,
            fanout,
            levels,
        } = self;
        assert!(!levels.is_empty(), "finish() before any node was pushed");
        let top = levels.len() - 1;
        assert_eq!(
            levels[top].node_count(),
            1,
            "topmost level holds {} nodes, expected a single root",
            levels[top].node_count()
        );
        // Root-first stacking: arena offset of level `l` is the node
        // count of all levels above it.
        let mut offsets = vec![0u32; levels.len()];
        for l in (0..top).rev() {
            offsets[l] = offsets[l + 1] + levels[l + 1].node_count() as u32;
        }
        let num_nodes: usize = levels.iter().map(FrozenLevel::node_count).sum();
        let mut coords = Vec::with_capacity(num_nodes * 4 * fanout);
        let mut ids = Vec::with_capacity(num_nodes * fanout);
        let mut counts = Vec::with_capacity(num_nodes);
        for (l, level) in levels.iter().enumerate().rev() {
            coords.extend_from_slice(&level.coords);
            counts.extend_from_slice(&level.counts);
            if l == 0 {
                // Leaf lanes carry item ids verbatim.
                ids.extend_from_slice(&level.ids);
            } else {
                // Internal lanes: within-level child position → arena
                // index. Padding lanes stay 0, matching `from_nodes`.
                let child_off = offsets[l - 1] as u64;
                for (node, chunk) in level.ids.chunks(fanout).enumerate() {
                    let valid = level.counts[node] as usize;
                    for (lane, &pos) in chunk.iter().enumerate() {
                        ids.push(if lane < valid { child_off + pos } else { 0 });
                    }
                }
            }
        }
        FrozenRTree {
            config,
            fanout,
            num_nodes: num_nodes as u32,
            leaf_start: offsets[0],
            depth: top as u32,
            len,
            coords,
            ids,
            counts,
        }
    }
}

impl FrozenRTree {
    /// Compiles a pointer tree into the frozen layout.
    pub fn freeze(tree: &RTree) -> FrozenRTree {
        FrozenRTree::from_nodes(
            tree.config(),
            tree.depth(),
            tree.len(),
            tree.root().index() as u64,
            |key| {
                let node = tree.node(NodeId(key as u32));
                let entries = node
                    .entries
                    .iter()
                    .map(|e| {
                        let child = match e.child {
                            Child::Node(c) => FrozenChild::Node(c.index() as u64),
                            Child::Item(item) => FrozenChild::Item(item),
                        };
                        (e.mbr, child)
                    })
                    .collect();
                (node.level, entries)
            },
        )
    }

    /// Compiles a frozen tree from any keyed node store (in-memory arena,
    /// disk pages, buffer-pool pages): `fetch(key)` returns a node's
    /// level and entries **in stored order**. Nodes are laid out
    /// breadth-first from `root`, which for a height-balanced tree is
    /// level-major order.
    ///
    /// # Panics
    ///
    /// Panics if a node holds more than `config.max_entries` entries or
    /// if the node graph is not a tree rooted at `root` (a key fetched
    /// twice).
    pub fn from_nodes<F>(
        config: RTreeConfig,
        depth: u32,
        len: usize,
        root: u64,
        mut fetch: F,
    ) -> FrozenRTree
    where
        F: FnMut(u64) -> (u32, Vec<(Rect, FrozenChild)>),
    {
        let fanout = config.max_entries;
        // Pass 1: breadth-first walk assigning dense indices in dequeue
        // order; children are enqueued in entry order so siblings stay
        // adjacent and levels form contiguous runs.
        let mut nodes: Vec<(u32, Vec<(Rect, FrozenChild)>)> = Vec::new();
        let mut index_of: HashMap<u64, u32> = HashMap::new();
        let mut queue: VecDeque<u64> = VecDeque::new();
        index_of.insert(root, 0);
        queue.push_back(root);
        while let Some(key) = queue.pop_front() {
            let (level, entries) = fetch(key);
            assert!(
                entries.len() <= fanout,
                "node {key} holds {} entries > branching factor {fanout}",
                entries.len()
            );
            for &(_, child) in &entries {
                if let FrozenChild::Node(c) = child {
                    let next = (nodes.len() + queue.len() + 1) as u32;
                    let prev = index_of.insert(c, next);
                    assert!(prev.is_none(), "node {c} reached through two parents");
                    queue.push_back(c);
                }
            }
            nodes.push((level, entries));
        }

        // Pass 2: fill the node-major SoA blocks, NaN-padding unused
        // lanes.
        let num_nodes = nodes.len() as u32;
        let lanes = nodes.len() * fanout;
        let mut coords = vec![f64::NAN; 4 * lanes];
        let mut ids = vec![0u64; lanes];
        let mut counts = vec![0u32; nodes.len()];
        let mut leaf_start = num_nodes.saturating_sub(1);
        for (n, (level, entries)) in nodes.iter().enumerate() {
            if *level == 0 {
                leaf_start = leaf_start.min(n as u32);
            }
            counts[n] = entries.len() as u32;
            let block = n * 4 * fanout;
            for (lane, &(mbr, child)) in entries.iter().enumerate() {
                coords[block + lane] = mbr.min_x;
                coords[block + fanout + lane] = mbr.min_y;
                coords[block + 2 * fanout + lane] = mbr.max_x;
                coords[block + 3 * fanout + lane] = mbr.max_y;
                ids[n * fanout + lane] = match child {
                    FrozenChild::Node(c) => index_of[&c] as u64,
                    FrozenChild::Item(item) => item.0,
                };
            }
        }

        FrozenRTree {
            config,
            fanout,
            num_nodes,
            leaf_start,
            depth,
            len,
            coords,
            ids,
            counts,
        }
    }

    /// The configuration of the source tree.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Lanes per node — the branching factor the planes are padded to.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Root level — 0 for a single-leaf tree.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of nodes in the arena.
    pub fn node_count(&self) -> usize {
        self.num_nodes as usize
    }

    /// The four `fanout()`-lane coordinate planes `(x1, y1, x2, y2)` of
    /// the node at `index` — contiguous slices of the node's SoA block;
    /// padding lanes hold NaN.
    #[inline(always)]
    pub fn node_planes(&self, index: u32) -> (&[f64], &[f64], &[f64], &[f64]) {
        let block = index as usize * 4 * self.fanout;
        let b = &self.coords[block..block + 4 * self.fanout];
        let (x1, rest) = b.split_at(self.fanout);
        let (y1, rest) = rest.split_at(self.fanout);
        let (x2, y2) = rest.split_at(self.fanout);
        (x1, y1, x2, y2)
    }

    /// The id lanes of the node at `index`: child BFS indices for an
    /// internal node, raw item ids for a leaf, 0 in padding lanes.
    #[inline(always)]
    pub(crate) fn node_ids(&self, index: u32) -> &[u64] {
        let base = index as usize * self.fanout;
        &self.ids[base..base + self.fanout]
    }

    /// BFS index of the root node (always 0).
    pub fn root_index(&self) -> u32 {
        0
    }

    /// `true` if the node at `index` is a leaf.
    pub fn is_leaf_index(&self, index: u32) -> bool {
        index >= self.leaf_start
    }

    /// Valid entries of the node at `index`.
    pub fn entry_count(&self, index: u32) -> usize {
        self.counts[index as usize] as usize
    }

    /// Reassembles the `lane`-th entry rectangle of node `index`.
    pub fn entry_mbr(&self, index: u32, lane: usize) -> Rect {
        debug_assert!(lane < self.entry_count(index));
        let block = index as usize * 4 * self.fanout;
        Rect::new(
            self.coords[block + lane],
            self.coords[block + self.fanout + lane],
            self.coords[block + 2 * self.fanout + lane],
            self.coords[block + 3 * self.fanout + lane],
        )
    }

    /// Child node (BFS index) of an internal entry.
    pub fn entry_child_node(&self, index: u32, lane: usize) -> u32 {
        debug_assert!(!self.is_leaf_index(index) && lane < self.entry_count(index));
        self.ids[index as usize * self.fanout + lane] as u32
    }

    /// Item of a leaf entry.
    pub fn entry_child_item(&self, index: u32, lane: usize) -> ItemId {
        debug_assert!(self.is_leaf_index(index) && lane < self.entry_count(index));
        ItemId(self.ids[index as usize * self.fanout + lane])
    }

    /// Minimal rectangle bounding the node at `index`, or `None` if it
    /// is empty.
    pub fn node_mbr(&self, index: u32) -> Option<Rect> {
        Rect::mbr_of_rects((0..self.entry_count(index)).map(|lane| self.entry_mbr(index, lane)))
    }

    /// Minimal rectangle bounding everything indexed (the root's MBR).
    pub fn mbr(&self) -> Option<Rect> {
        self.node_mbr(0)
    }

    /// All `(mbr, item)` pairs, in exactly the order
    /// [`RTree::items`] reports them for the source tree.
    pub fn items(&self) -> Vec<(Rect, ItemId)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![0u32];
        while let Some(index) = stack.pop() {
            let leaf = self.is_leaf_index(index);
            let base = index as usize * self.fanout;
            for lane in 0..self.counts[index as usize] as usize {
                if leaf {
                    out.push((self.entry_mbr(index, lane), ItemId(self.ids[base + lane])));
                } else {
                    stack.push(self.ids[base + lane] as u32);
                }
            }
        }
        out
    }

    /// The paper's `SEARCH` (§3.1) on the frozen layout; results and
    /// counters are identical to [`RTree::search_within`].
    pub fn search_within(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.window_traverse::<DefaultKernel, _, _>(
            window,
            true,
            &mut stack,
            stats,
            &mut |item, _| out.push(item),
        );
        out
    }

    /// Intersection search; identical to [`RTree::search_intersecting`].
    pub fn search_intersecting(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.window_traverse::<DefaultKernel, _, _>(
            window,
            false,
            &mut stack,
            stats,
            &mut |item, _| out.push(item),
        );
        out
    }

    /// [`search_within`](Self::search_within) forced through the scalar
    /// lane kernel — the reference path the differential fuzzer holds
    /// the SIMD kernels against. Compiled on every target and feature
    /// set.
    pub fn search_within_scalar(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.window_traverse::<ScalarKernel, _, _>(
            window,
            true,
            &mut stack,
            stats,
            &mut |item, _| out.push(item),
        );
        out
    }

    /// [`search_intersecting`](Self::search_intersecting) forced through
    /// the scalar lane kernel.
    pub fn search_intersecting_scalar(
        &self,
        window: &Rect,
        stats: &mut SearchStats,
    ) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.window_traverse::<ScalarKernel, _, _>(
            window,
            false,
            &mut stack,
            stats,
            &mut |item, _| out.push(item),
        );
        out
    }

    /// [`search_within`](Self::search_within) without statistics or
    /// per-call allocation.
    pub fn search_within_into<'s>(
        &self,
        window: &Rect,
        scratch: &'s mut SearchScratch,
    ) -> &'s [ItemId] {
        self.window_into(window, true, scratch)
    }

    /// [`search_intersecting`](Self::search_intersecting) without
    /// statistics or per-call allocation.
    pub fn search_intersecting_into<'s>(
        &self,
        window: &Rect,
        scratch: &'s mut SearchScratch,
    ) -> &'s [ItemId] {
        self.window_into(window, false, scratch)
    }

    fn window_into<'s>(
        &self,
        window: &Rect,
        within: bool,
        scratch: &'s mut SearchScratch,
    ) -> &'s [ItemId] {
        let SearchScratch { stack, out, .. } = scratch;
        out.clear();
        self.window_traverse::<DefaultKernel, _, _>(
            window,
            within,
            stack,
            &mut NoStats,
            &mut |item, _| out.push(item),
        );
        out
    }

    /// Streaming variant: invokes `visit(item, mbr)` for every matching
    /// leaf entry, exactly like [`RTree::search_visit`].
    pub fn search_visit<F: FnMut(ItemId, Rect)>(
        &self,
        window: &Rect,
        within: bool,
        stats: &mut SearchStats,
        visit: &mut F,
    ) {
        let mut stack = Vec::new();
        self.window_traverse::<DefaultKernel, _, _>(window, within, &mut stack, stats, visit);
    }

    /// Bit mask (lane `i` → bit `i`) of the lanes of node `index` whose
    /// entry MBR intersects `window`, evaluated through the build's
    /// default lane kernel. NaN padding lanes never set a bit, so the
    /// mask covers exactly the valid lanes that would pass
    /// `entry_mbr(index, lane).intersects(window)`. Used by the frozen
    /// spatial join for its pair pruning.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `fanout() > 64`; callers handle wide
    /// nodes with a per-lane loop.
    pub fn lane_intersect_mask(&self, index: u32, window: &Rect) -> u64 {
        debug_assert!(self.fanout <= 64);
        let (x1, y1, x2, y2) = self.node_planes(index);
        DefaultKernel::mask_intersects(x1, y1, x2, y2, window)
    }

    /// Hints the caches toward node `index`'s lanes — both ends of the
    /// coordinate block and the id plane. Purely a latency hint (a
    /// no-op without the `simd` feature): the batch engine issues it
    /// for the node a traversal fiber will visit on its next turn, so
    /// the lines fill from DRAM while the other fibers execute.
    #[inline(always)]
    pub(crate) fn prefetch_node(&self, index: u32) {
        let block = index as usize * 4 * self.fanout;
        crate::simd::prefetch_read(&self.coords[block]);
        crate::simd::prefetch_read(&self.coords[block + 4 * self.fanout - 1]);
        crate::simd::prefetch_read(&self.ids[index as usize * self.fanout]);
    }

    /// The hot loop. Pruning hands the four coordinate planes of one
    /// node to a [`LaneKernel`], which folds the per-lane comparisons
    /// into a `u64` hit mask (scalar `&`-folding or explicit SSE2/AVX —
    /// every kernel produces the identical mask); matching leaf lanes
    /// are then visited lowest-lane-first and matching children pushed
    /// highest-lane-first, so the visit order — and therefore every
    /// result sequence and counter — matches the pointer tree's
    /// reverse-order push exactly. NaN padding lanes fail every
    /// comparison and never set a mask bit. Branching factors above 64
    /// lanes fall back to plain per-lane loops.
    pub(crate) fn window_traverse<K: LaneKernel, S: Sink, F: FnMut(ItemId, Rect)>(
        &self,
        window: &Rect,
        within: bool,
        stack: &mut Vec<NodeId>,
        sink: &mut S,
        visit: &mut F,
    ) {
        sink.query();
        stack.clear();
        stack.push(NodeId(0));
        while let Some(id) = stack.pop() {
            self.window_visit_node::<K, S, F>(id, window, within, stack, sink, visit);
        }
    }

    /// One step of the window-search stack machine: prune the popped
    /// node's lanes, emit matching leaf entries, push matching children.
    /// The batch engine's shared group traversal replays this body's
    /// lane arms per active query (same kernels, same lane orders), so
    /// per-query behaviour cannot diverge; the differential fuzzer's
    /// frozen level holds the two paths against each other.
    #[inline(always)]
    pub(crate) fn window_visit_node<K: LaneKernel, S: Sink, F: FnMut(ItemId, Rect)>(
        &self,
        id: NodeId,
        window: &Rect,
        within: bool,
        stack: &mut Vec<NodeId>,
        sink: &mut S,
        visit: &mut F,
    ) {
        let fanout = self.fanout;
        {
            let n = id.index();
            let leaf = self.is_leaf_index(n as u32);
            sink.node(leaf);
            let (x1, y1, x2, y2) = self.node_planes(n as u32);
            let ids = &self.ids[n * fanout..(n + 1) * fanout];
            if leaf && fanout <= 64 {
                // WITHIN is the paper's containment test
                // (`Rect::covered_by`), the intersection arm is
                // `Rect::intersects`; both evaluated over the planes so
                // NaN padding lanes come out false.
                let mut mask = if within {
                    K::mask_within(x1, y1, x2, y2, window)
                } else {
                    K::mask_intersects(x1, y1, x2, y2, window)
                };
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    sink.item();
                    visit(
                        ItemId(ids[lane]),
                        Rect::new(x1[lane], y1[lane], x2[lane], y2[lane]),
                    );
                }
            } else if leaf {
                for lane in 0..fanout {
                    let hit = if within {
                        (window.min_x <= x1[lane])
                            & (window.min_y <= y1[lane])
                            & (x2[lane] <= window.max_x)
                            & (y2[lane] <= window.max_y)
                    } else {
                        (x1[lane] <= window.max_x)
                            & (window.min_x <= x2[lane])
                            & (y1[lane] <= window.max_y)
                            & (window.min_y <= y2[lane])
                    };
                    if hit {
                        sink.item();
                        visit(
                            ItemId(ids[lane]),
                            Rect::new(x1[lane], y1[lane], x2[lane], y2[lane]),
                        );
                    }
                }
            } else if fanout <= 64 {
                let mut mask = K::mask_intersects(x1, y1, x2, y2, window);
                while mask != 0 {
                    let lane = 63 - mask.leading_zeros() as usize;
                    mask &= !(1u64 << lane);
                    stack.push(NodeId(ids[lane] as u32));
                }
            } else {
                for lane in (0..fanout).rev() {
                    let hit = (x1[lane] <= window.max_x)
                        & (window.min_x <= x2[lane])
                        & (y1[lane] <= window.max_y)
                        & (window.min_y <= y2[lane]);
                    if hit {
                        stack.push(NodeId(ids[lane] as u32));
                    }
                }
            }
        }
    }

    /// The Table 1 point query; identical to [`RTree::point_query`].
    pub fn point_query(&self, p: Point, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.point_traverse::<DefaultKernel, _>(p, &mut stack, stats, &mut out);
        out
    }

    /// [`point_query`](Self::point_query) forced through the scalar lane
    /// kernel (differential-testing reference path).
    pub fn point_query_scalar(&self, p: Point, stats: &mut SearchStats) -> Vec<ItemId> {
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.point_traverse::<ScalarKernel, _>(p, &mut stack, stats, &mut out);
        out
    }

    /// [`point_query`](Self::point_query) without statistics or per-call
    /// allocation.
    pub fn point_query_into<'s>(&self, p: Point, scratch: &'s mut SearchScratch) -> &'s [ItemId] {
        let SearchScratch { stack, out, .. } = scratch;
        out.clear();
        self.point_traverse::<DefaultKernel, _>(p, stack, &mut NoStats, out);
        out
    }

    pub(crate) fn point_traverse<K: LaneKernel, S: Sink>(
        &self,
        p: Point,
        stack: &mut Vec<NodeId>,
        sink: &mut S,
        out: &mut Vec<ItemId>,
    ) {
        sink.query();
        stack.clear();
        stack.push(NodeId(0));
        let fanout = self.fanout;
        while let Some(id) = stack.pop() {
            let n = id.index();
            let leaf = self.is_leaf_index(n as u32);
            sink.node(leaf);
            let (x1, y1, x2, y2) = self.node_planes(n as u32);
            let ids = &self.ids[n * fanout..(n + 1) * fanout];
            if fanout <= 64 {
                // `Rect::contains_point` over the planes; NaN padding
                // lanes never set a bit. Hits are consumed
                // lowest-lane-first — the pointer tree's forward entry
                // order.
                let mut mask = K::mask_point(x1, y1, x2, y2, p);
                while mask != 0 {
                    let lane = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    if leaf {
                        sink.item();
                        out.push(ItemId(ids[lane]));
                    } else {
                        stack.push(NodeId(ids[lane] as u32));
                    }
                }
            } else {
                for lane in 0..fanout {
                    let hit = (x1[lane] <= p.x)
                        & (p.x <= x2[lane])
                        & (y1[lane] <= p.y)
                        & (p.y <= y2[lane]);
                    if hit {
                        if leaf {
                            sink.item();
                            out.push(ItemId(ids[lane]));
                        } else {
                            stack.push(NodeId(ids[lane] as u32));
                        }
                    }
                }
            }
        }
    }

    /// Best-first k-NN; neighbours and counters are identical to
    /// [`RTree::nearest_neighbors`].
    pub fn nearest_neighbors(&self, p: Point, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        let mut heap = BinaryHeap::new();
        let mut out = Vec::with_capacity(k);
        self.knn_traverse::<DefaultKernel, _>(p, k, stats, &mut heap, &mut out);
        out
    }

    /// [`nearest_neighbors`](Self::nearest_neighbors) forced through the
    /// scalar lane kernel (differential-testing reference path).
    pub fn nearest_neighbors_scalar(
        &self,
        p: Point,
        k: usize,
        stats: &mut SearchStats,
    ) -> Vec<Neighbor> {
        let mut heap = BinaryHeap::new();
        let mut out = Vec::with_capacity(k);
        self.knn_traverse::<ScalarKernel, _>(p, k, stats, &mut heap, &mut out);
        out
    }

    /// [`nearest_neighbors`](Self::nearest_neighbors) without statistics
    /// or per-call allocation.
    pub fn nearest_neighbors_into<'s>(
        &self,
        p: Point,
        k: usize,
        scratch: &'s mut KnnScratch,
    ) -> &'s [Neighbor] {
        let KnnScratch { heap, out } = scratch;
        self.knn_traverse::<DefaultKernel, _>(p, k, &mut NoStats, heap, out);
        out
    }

    /// The single nearest item to `p`, if the tree is non-empty.
    pub fn nearest_neighbor(&self, p: Point, stats: &mut SearchStats) -> Option<Neighbor> {
        self.nearest_neighbors(p, 1, stats).into_iter().next()
    }

    /// Same heap discipline as the pointer tree's branch and bound; the
    /// only differences are that entry expansion iterates valid lanes
    /// only (padding lanes would poison the heap with NaN distances,
    /// which `total_cmp` orders above every real distance) and that the
    /// per-lane `min_distance_sq` evaluations run through the lane
    /// kernel — the vector kernels reproduce the scalar formula bit for
    /// bit, so heap order is unchanged.
    pub(crate) fn knn_traverse<K: LaneKernel, S: Sink>(
        &self,
        p: Point,
        k: usize,
        sink: &mut S,
        heap: &mut BinaryHeap<HeapEntry>,
        out: &mut Vec<Neighbor>,
    ) {
        sink.query();
        heap.clear();
        out.clear();
        if k == 0 || self.is_empty() {
            return;
        }
        heap.push(HeapEntry {
            dist: 0.0,
            kind: HeapKind::Node(NodeId(0)),
        });
        let mut dists = [0.0f64; 64];
        while let Some(HeapEntry { dist, kind }) = heap.pop() {
            match kind {
                HeapKind::Item(item, mbr) => {
                    out.push(Neighbor {
                        item,
                        mbr,
                        distance_sq: dist,
                    });
                    sink.item();
                    if out.len() == k {
                        break;
                    }
                }
                HeapKind::Node(id) => {
                    let index = id.0;
                    let leaf = self.is_leaf_index(index);
                    sink.node(leaf);
                    let base = id.index() * self.fanout;
                    let count = self.counts[id.index()] as usize;
                    if count <= 64 {
                        let (x1, y1, x2, y2) = self.node_planes(index);
                        K::distances(
                            &x1[..count],
                            &y1[..count],
                            &x2[..count],
                            &y2[..count],
                            p,
                            &mut dists[..count],
                        );
                        for (lane, &d) in dists[..count].iter().enumerate() {
                            if leaf {
                                heap.push(HeapEntry {
                                    dist: d,
                                    kind: HeapKind::Item(
                                        ItemId(self.ids[base + lane]),
                                        self.entry_mbr(index, lane),
                                    ),
                                });
                            } else {
                                heap.push(HeapEntry {
                                    dist: d,
                                    kind: HeapKind::Node(NodeId(self.ids[base + lane] as u32)),
                                });
                            }
                        }
                    } else {
                        for lane in 0..count {
                            let mbr = self.entry_mbr(index, lane);
                            let d = mbr.min_distance_sq(p);
                            if leaf {
                                heap.push(HeapEntry {
                                    dist: d,
                                    kind: HeapKind::Item(ItemId(self.ids[base + lane]), mbr),
                                });
                            } else {
                                heap.push(HeapEntry {
                                    dist: d,
                                    kind: HeapKind::Node(NodeId(self.ids[base + lane] as u32)),
                                });
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    fn build(n: usize) -> RTree {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..n {
            let x = (i % 23) as f64 * 3.0 + (i as f64 * 0.01);
            let y = (i / 23) as f64 * 4.0;
            t.insert(pt(x, y), ItemId(i as u64));
        }
        t
    }

    /// Replays a pointer tree into a [`FrozenBuilder`] bottom-up, the way
    /// an external bulk loader emits nodes: leaves left-to-right, then
    /// each internal level, root last.
    fn rebuild_bottom_up(tree: &RTree) -> FrozenRTree {
        let mut builder = FrozenBuilder::new(tree.config());
        // Gather nodes per level in left-to-right order via a BFS from
        // the root (BFS visits each level in sibling order).
        let mut by_level: Vec<Vec<NodeId>> = vec![Vec::new(); tree.depth() as usize + 1];
        let mut queue = VecDeque::from([tree.root()]);
        while let Some(id) = queue.pop_front() {
            let node = tree.node(id);
            by_level[node.level as usize].push(id);
            for e in &node.entries {
                if let Child::Node(c) = e.child {
                    queue.push_back(c);
                }
            }
        }
        for level in 0..by_level.len() as u32 {
            for &id in &by_level[level as usize] {
                let entries: Vec<(Rect, FrozenChild)> = tree
                    .node(id)
                    .entries
                    .iter()
                    .map(|e| {
                        let child = match e.child {
                            Child::Node(c) => FrozenChild::Node(c.index() as u64),
                            Child::Item(item) => FrozenChild::Item(item),
                        };
                        (e.mbr, child)
                    })
                    .collect();
                builder.push_node(level, id.index() as u64, &entries);
            }
        }
        builder.finish(tree.len())
    }

    #[test]
    fn builder_output_is_bit_identical_to_freeze() {
        // Sizes that produce 1-level, 2-level and 3-level trees, plus
        // ragged last nodes at every level.
        for n in [1, 3, 4, 5, 16, 17, 57, 200, 643] {
            let tree = build(n);
            let frozen = FrozenRTree::freeze(&tree);
            let built = rebuild_bottom_up(&tree);
            assert_eq!(built, frozen, "n={n}");
            // Sanity: PartialEq is reflexive despite NaN padding lanes.
            assert_eq!(frozen, frozen.clone(), "n={n} self-equality");
        }
    }

    #[test]
    fn builder_accepts_empty_root_leaf() {
        let empty = FrozenRTree::freeze(&RTree::new(RTreeConfig::PAPER));
        let mut b = FrozenBuilder::new(RTreeConfig::PAPER);
        b.push_node(0, 0, &[]);
        assert_eq!(b.finish(0), empty);
    }

    #[test]
    #[should_panic(expected = "expected a single root")]
    fn builder_rejects_missing_root() {
        let mut b = FrozenBuilder::new(RTreeConfig::PAPER);
        b.push_node(0, 0, &[(pt(0.0, 0.0), FrozenChild::Item(ItemId(0)))]);
        b.push_node(0, 1, &[(pt(1.0, 1.0), FrozenChild::Item(ItemId(1)))]);
        let _ = b.finish(2);
    }

    #[test]
    #[should_panic(expected = "unknown child key")]
    fn builder_rejects_dangling_child_key() {
        let mut b = FrozenBuilder::new(RTreeConfig::PAPER);
        b.push_node(0, 0, &[(pt(0.0, 0.0), FrozenChild::Item(ItemId(0)))]);
        b.push_node(1, 7, &[(pt(0.0, 0.0), FrozenChild::Node(99))]);
    }

    #[test]
    fn planes_are_padded_to_fanout() {
        let tree = build(57);
        let f = FrozenRTree::freeze(&tree);
        let lanes = f.node_count() * f.fanout();
        // Every lane beyond a node's count is a NaN sentinel in all four
        // of the node's planes.
        let mut padding = 0;
        for n in 0..f.node_count() as u32 {
            let (x1, y1, x2, y2) = f.node_planes(n);
            assert_eq!(x1.len(), f.fanout());
            assert_eq!(y1.len(), f.fanout());
            assert_eq!(x2.len(), f.fanout());
            assert_eq!(y2.len(), f.fanout());
            for lane in f.entry_count(n)..f.fanout() {
                assert!(
                    x1[lane].is_nan()
                        && y1[lane].is_nan()
                        && x2[lane].is_nan()
                        && y2[lane].is_nan()
                );
                padding += 1;
            }
        }
        assert_eq!(
            padding,
            lanes - tree.iter_nodes().map(|(_, n)| n.len()).sum::<usize>()
        );
    }

    #[test]
    fn bfs_order_is_level_major() {
        let tree = build(200);
        let f = FrozenRTree::freeze(&tree);
        // The defining BFS property: concatenating the child lists of
        // nodes 0, 1, 2, … yields exactly the indices 1..num_nodes in
        // order — siblings adjacent, levels in contiguous runs, leaves a
        // contiguous suffix.
        let mut expected = 1u32;
        for index in 0..f.node_count() as u32 {
            if f.is_leaf_index(index) {
                continue;
            }
            for lane in 0..f.entry_count(index) {
                assert_eq!(f.entry_child_node(index, lane), expected);
                expected += 1;
            }
        }
        assert_eq!(expected as usize, f.node_count());
        assert_eq!(f.depth(), tree.depth());
        assert_eq!(f.node_count(), tree.node_count());
        assert_eq!(f.len(), tree.len());
        assert_eq!(f.mbr(), tree.mbr());
    }

    #[test]
    fn padding_lanes_never_match_any_window() {
        let tree = build(57);
        let f = FrozenRTree::freeze(&tree);
        let t_stats = &mut SearchStats::default();
        let f_stats = &mut SearchStats::default();
        // Regular, degenerate, infinite, and NaN windows (the
        // `intersection_area` NaN-guard vectors from the geometry
        // tests): a padding lane must never contribute a hit or a node
        // visit under any of them.
        // (Struct literals: `Rect::new` debug-asserts finiteness, but the
        // search predicates operate on raw fields and must stay safe for
        // any bit pattern.)
        let windows = [
            Rect::new(0.0, 0.0, 30.0, 30.0),
            Rect::new(5.0, 5.0, 5.0, 5.0),
            Rect {
                min_x: f64::NEG_INFINITY,
                min_y: f64::NEG_INFINITY,
                max_x: f64::INFINITY,
                max_y: f64::INFINITY,
            },
            Rect {
                min_x: f64::NAN,
                min_y: 0.0,
                max_x: 10.0,
                max_y: 10.0,
            },
            Rect {
                min_x: 0.0,
                min_y: 0.0,
                max_x: f64::NAN,
                max_y: f64::NAN,
            },
        ];
        for w in &windows {
            assert_eq!(f.search_within(w, f_stats), tree.search_within(w, t_stats));
            assert_eq!(
                f.search_intersecting(w, f_stats),
                tree.search_intersecting(w, t_stats)
            );
        }
        assert_eq!(f_stats, t_stats);
    }

    #[test]
    fn frozen_matches_pointer_tree_on_all_paths() {
        let tree = build(300);
        let f = FrozenRTree::freeze(&tree);
        let mut ts = SearchStats::default();
        let mut fs = SearchStats::default();
        let mut t_scratch = SearchScratch::new();
        let mut f_scratch = SearchScratch::new();
        for q in 0..40 {
            let g = q as f64;
            let w = Rect::new(g, g * 0.7, g + 15.0, g * 0.7 + 12.0);
            assert_eq!(
                f.search_within(&w, &mut fs),
                tree.search_within(&w, &mut ts)
            );
            assert_eq!(
                f.search_intersecting(&w, &mut fs),
                tree.search_intersecting(&w, &mut ts)
            );
            assert_eq!(
                f.search_within_into(&w, &mut f_scratch),
                tree.search_within_into(&w, &mut t_scratch)
            );
            let p = Point::new(g * 1.5, g);
            assert_eq!(f.point_query(p, &mut fs), tree.point_query(p, &mut ts));
            assert_eq!(
                f.point_query_into(p, &mut f_scratch),
                tree.point_query_into(p, &mut t_scratch)
            );
            let fk = f.nearest_neighbors(p, 9, &mut fs);
            let tk = tree.nearest_neighbors(p, 9, &mut ts);
            assert_eq!(fk, tk);
        }
        assert_eq!(fs, ts, "frozen counters diverged from pointer tree");
        assert_eq!(f.items(), tree.items());
    }

    #[test]
    fn scalar_kernel_paths_are_bit_identical_to_default() {
        // On SIMD builds this pins the vector kernels to the scalar
        // reference (results, order, counters); on scalar builds both
        // sides run the same kernel and the test is a tautology — which
        // is exactly the claim the feature gate makes.
        let tree = build(400);
        let f = FrozenRTree::freeze(&tree);
        let mut ds = SearchStats::default();
        let mut ss = SearchStats::default();
        for q in 0..40 {
            let g = q as f64;
            let w = Rect::new(g * 0.9, g * 0.6, g * 0.9 + 14.0, g * 0.6 + 11.0);
            assert_eq!(
                f.search_within(&w, &mut ds),
                f.search_within_scalar(&w, &mut ss)
            );
            assert_eq!(
                f.search_intersecting(&w, &mut ds),
                f.search_intersecting_scalar(&w, &mut ss)
            );
            let p = Point::new(g * 1.7, g * 0.8);
            assert_eq!(f.point_query(p, &mut ds), f.point_query_scalar(p, &mut ss));
            assert_eq!(
                f.nearest_neighbors(p, 7, &mut ds),
                f.nearest_neighbors_scalar(p, 7, &mut ss)
            );
        }
        assert_eq!(ds, ss, "kernel counters diverged");
    }

    #[test]
    fn lane_intersect_mask_matches_per_lane_test() {
        let tree = build(150);
        let f = FrozenRTree::freeze(&tree);
        let w = Rect::new(10.0, 5.0, 45.0, 25.0);
        for index in 0..f.node_count() as u32 {
            let mask = f.lane_intersect_mask(index, &w);
            for lane in 0..f.fanout() {
                let expect = lane < f.entry_count(index) && f.entry_mbr(index, lane).intersects(&w);
                assert_eq!(mask >> lane & 1 == 1, expect, "node {index} lane {lane}");
            }
        }
    }

    #[test]
    fn knn_ignores_padding_lanes_even_when_k_exceeds_population() {
        let tree = build(5);
        let f = FrozenRTree::freeze(&tree);
        let mut stats = SearchStats::default();
        let got = f.nearest_neighbors(Point::new(1.0, 1.0), 50, &mut stats);
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|n| n.distance_sq.is_finite()));
    }

    #[test]
    fn empty_tree_freezes_and_searches() {
        let tree = RTree::new(RTreeConfig::PAPER);
        let f = FrozenRTree::freeze(&tree);
        assert!(f.is_empty());
        assert_eq!(f.node_count(), 1);
        let mut fs = SearchStats::default();
        let mut ts = SearchStats::default();
        let w = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert_eq!(
            f.search_within(&w, &mut fs),
            tree.search_within(&w, &mut ts)
        );
        assert!(f
            .nearest_neighbors(Point::new(0.0, 0.0), 3, &mut fs)
            .is_empty());
        assert!(tree
            .nearest_neighbors(Point::new(0.0, 0.0), 3, &mut ts)
            .is_empty());
        assert_eq!(fs, ts);
        assert_eq!(f.mbr(), None);
    }

    #[test]
    fn scratch_paths_are_allocation_free_after_warmup() {
        let tree = build(500);
        let f = FrozenRTree::freeze(&tree);
        let mut scratch = SearchScratch::new();
        let mut knn = KnnScratch::new();
        let windows: Vec<Rect> = (0..30)
            .map(|q| {
                let g = q as f64;
                Rect::new(g, g, g + 25.0, g + 25.0)
            })
            .collect();
        for w in &windows {
            f.search_within_into(w, &mut scratch);
            f.nearest_neighbors_into(Point::new(w.min_x, w.min_y), 8, &mut knn);
        }
        let warm = (scratch.capacities(), knn.capacities());
        for _ in 0..5 {
            for w in &windows {
                f.search_within_into(w, &mut scratch);
                f.search_intersecting_into(w, &mut scratch);
                f.nearest_neighbors_into(Point::new(w.min_x, w.min_y), 8, &mut knn);
            }
            assert_eq!((scratch.capacities(), knn.capacities()), warm);
        }
    }
}
