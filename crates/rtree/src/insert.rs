//! Guttman's INSERT: ChooseLeaf, SplitNode, AdjustTree.
//!
//! This is the dynamic construction path whose dead-space pathology
//! (Figure 3.4c) the paper contrasts with PACK. It also serves §3.4's
//! update problem: INSERT works unchanged on PACKed trees.

use crate::node::{Child, Entry, ItemId, Node, NodeId};
use crate::split::split_entries;
use crate::tree::RTree;
use rtree_geom::Rect;

impl RTree {
    /// Inserts an item with the given bounding rectangle (Guttman's
    /// INSERT).
    ///
    /// Descends from the root choosing at each step the subtree requiring
    /// the *least enlargement* to cover `mbr` (ties broken by smaller
    /// area), splits the leaf on overflow per the configured
    /// [`SplitPolicy`](crate::SplitPolicy), and propagates MBR updates and
    /// splits back to the root, growing the tree upward when the root
    /// itself splits.
    pub fn insert(&mut self, mbr: Rect, item: ItemId) {
        self.insert_entry_at_level(Entry::item(mbr, item), 0);
        *self.len_mut() += 1;
    }

    /// Inserts an entry at a given tree level.
    ///
    /// Level 0 inserts a leaf entry; higher levels re-attach orphaned
    /// subtrees during [`remove`](RTree::remove)'s CondenseTree. The
    /// target level must exist (`level ≤ depth`).
    pub(crate) fn insert_entry_at_level(&mut self, entry: Entry, level: u32) {
        debug_assert!(level <= self.depth(), "insert level above root");
        // ChooseLeaf / ChooseNode: record the descent path as
        // (node, index-of-chosen-child) so AdjustTree can walk back up.
        let mut path: Vec<(NodeId, usize)> = Vec::new();
        let mut current = self.root();
        while self.node(current).level > level {
            let node = self.node(current);
            let chosen = choose_subtree(node, &entry.mbr);
            path.push((current, chosen));
            current = node.entries[chosen].child.expect_node();
        }

        // Install the entry; split on overflow.
        self.node_mut(current).entries.push(entry);
        let mut split_off: Option<NodeId> = self.split_if_overflowing(current);

        // AdjustTree: walk the path bottom-up, fixing MBRs and inserting
        // split partners.
        for (parent, child_idx) in path.into_iter().rev() {
            let child_id = self.node(parent).entries[child_idx].child.expect_node();
            let child_mbr = self.node(child_id).mbr().expect("child not empty");
            self.node_mut(parent).entries[child_idx].mbr = child_mbr;
            if let Some(new_node) = split_off.take() {
                let new_mbr = self.node(new_node).mbr().expect("split node not empty");
                self.node_mut(parent)
                    .entries
                    .push(Entry::node(new_mbr, new_node));
                split_off = self.split_if_overflowing(parent);
            }
        }

        // Root split: grow the tree upward.
        if let Some(new_node) = split_off {
            let old_root = self.root();
            let root_level = self.node(old_root).level + 1;
            let mut new_root = Node::new(root_level);
            new_root.entries.push(Entry::node(
                self.node(old_root).mbr().expect("root not empty"),
                old_root,
            ));
            new_root.entries.push(Entry::node(
                self.node(new_node).mbr().expect("split node not empty"),
                new_node,
            ));
            let new_root_id = self.alloc(new_root);
            self.set_root(new_root_id);
        }
    }

    /// Splits `id` if it exceeds `M` entries, returning the id of the newly
    /// allocated sibling.
    fn split_if_overflowing(&mut self, id: NodeId) -> Option<NodeId> {
        if self.node(id).len() <= self.config().max_entries {
            return None;
        }
        let level = self.node(id).level;
        let entries = std::mem::take(&mut self.node_mut(id).entries);
        let config = self.config();
        let (group_a, group_b) = split_entries(&config, entries);
        self.node_mut(id).entries = group_a;
        let mut sibling = Node::new(level);
        sibling.entries = group_b;
        Some(self.alloc(sibling))
    }
}

/// Guttman's ChooseLeaf criterion: least enlargement, ties by least area.
fn choose_subtree(node: &Node, mbr: &Rect) -> usize {
    debug_assert!(!node.is_empty());
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, e) in node.entries.iter().enumerate() {
        match e.child {
            Child::Node(_) => {}
            Child::Item(_) => unreachable!("choose_subtree on a leaf"),
        }
        let enlargement = e.mbr.enlargement(mbr);
        let area = e.mbr.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RTreeConfig, SplitPolicy};
    use rtree_geom::Point;

    fn pt(x: f64, y: f64) -> Rect {
        Rect::from_point(Point::new(x, y))
    }

    #[test]
    fn first_insert_goes_to_root_leaf() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(pt(1.0, 1.0), ItemId(0));
        t.assert_valid();
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn overflow_splits_root_and_grows() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..5 {
            t.insert(pt(i as f64, i as f64), ItemId(i));
            t.assert_valid();
        }
        assert_eq!(t.depth(), 1, "5 points with M=4 must split once");
        assert_eq!(t.len(), 5);
        assert_eq!(t.node_count(), 3); // root + 2 leaves
    }

    #[test]
    fn many_inserts_stay_valid_all_policies() {
        for policy in [
            SplitPolicy::Linear,
            SplitPolicy::Quadratic,
            SplitPolicy::Exhaustive,
        ] {
            let mut t = RTree::new(RTreeConfig::new(4, 2, policy));
            // Deterministic scatter.
            let mut x = 7u64;
            for i in 0..300u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let px = (x >> 33) as f64 % 1000.0;
                let py = (x >> 13) as f64 % 1000.0;
                t.insert(pt(px, py), ItemId(i));
            }
            t.assert_valid();
            assert_eq!(t.len(), 300);
            assert!(t.depth() >= 3, "{policy:?}: depth {}", t.depth());
        }
    }

    #[test]
    fn duplicate_rectangles_allowed() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..20 {
            t.insert(pt(5.0, 5.0), ItemId(i));
        }
        t.assert_valid();
        assert_eq!(t.len(), 20);
    }

    #[test]
    fn mbr_tracks_inserts() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        t.insert(pt(1.0, 2.0), ItemId(0));
        t.insert(pt(-5.0, 7.0), ItemId(1));
        t.insert(pt(10.0, -3.0), ItemId(2));
        assert_eq!(t.mbr(), Some(Rect::new(-5.0, -3.0, 10.0, 7.0)));
    }

    #[test]
    fn rect_items_insertable() {
        let mut t = RTree::new(RTreeConfig::PAPER);
        for i in 0..50u64 {
            let x = (i % 10) as f64 * 10.0;
            let y = (i / 10) as f64 * 10.0;
            t.insert(Rect::new(x, y, x + 15.0, y + 15.0), ItemId(i));
        }
        t.assert_valid();
        assert_eq!(t.len(), 50);
    }

    #[test]
    fn larger_branching_factor() {
        let mut t = RTree::new(RTreeConfig::with_branching(16));
        for i in 0..500u64 {
            let x = (i as f64 * 37.0) % 1000.0;
            let y = (i as f64 * 91.0) % 1000.0;
            t.insert(pt(x, y), ItemId(i));
        }
        t.assert_valid();
        assert!(t.depth() <= 3);
    }
}
