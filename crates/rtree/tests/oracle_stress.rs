//! The in-crate `condense_orphan_stress_randomized` scenario re-run as
//! an integration test with the external deep validator from
//! `crates/oracle` after every mutation: the unit test checks the tree's
//! own `assert_valid`, this one cross-examines the same CondenseTree
//! edge cases (orphan re-attachment, cascading eliminations, duplicate
//! rectangles, root shortening) with an independently written invariant
//! checker plus a linear-scan search differential.

use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats, SplitPolicy};
use rtree_oracle::{reference, validate_deep, DeepChecks, TreeImage};

fn pt(x: f64, y: f64) -> Rect {
    Rect::from_point(Point::new(x, y))
}

#[test]
fn condense_orphan_stress_validates_deep() {
    let configs = [
        RTreeConfig::new(3, 1, SplitPolicy::Linear),
        RTreeConfig::new(4, 2, SplitPolicy::Quadratic),
        RTreeConfig::new(5, 2, SplitPolicy::Exhaustive),
        RTreeConfig::PAPER,
    ];
    for &seed in &[3u64, 17, 1985] {
        for config in configs {
            let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = move || {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s >> 33
            };
            let ctx = format!("seed {seed}, config {config:?}");
            let mut t = RTree::new(config);
            let mut live: Vec<(Rect, ItemId)> = Vec::new();
            let mut next_id = 0u64;
            for step in 0..400 {
                let insert_pct = if step < 170 { 65 } else { 25 };
                if live.is_empty() || next() % 100 < insert_pct {
                    let rect = if !live.is_empty() && next() % 4 == 0 {
                        live[next() as usize % live.len()].0
                    } else {
                        pt((next() % 1000) as f64, (next() % 1000) as f64)
                    };
                    let id = ItemId(next_id);
                    next_id += 1;
                    t.insert(rect, id);
                    live.push((rect, id));
                } else {
                    let (rect, id) = live.swap_remove(next() as usize % live.len());
                    assert!(t.remove(rect, id), "{ctx}: step {step}: {id:?} missing");
                    validate_deep(&TreeImage::of_rtree(&t), DeepChecks::dynamic())
                        .unwrap_or_else(|e| panic!("{ctx}: step {step}: {e}"));
                }
                if step % 100 == 99 {
                    let w = Rect::new(100.0, 100.0, 700.0, 700.0);
                    let mut stats = SearchStats::default();
                    let mut got = t.search_intersecting(&w, &mut stats);
                    got.sort_unstable_by_key(|&ItemId(i)| i);
                    let mut expect = reference::window_items(&live, &w, false);
                    expect.sort_unstable_by_key(|&ItemId(i)| i);
                    assert_eq!(got, expect, "{ctx}: step {step}: search diverges");
                }
            }
            // Drain to empty: the deepest cascade of all.
            while let Some((rect, id)) = live.pop() {
                assert!(t.remove(rect, id), "{ctx}: drain {id:?} missing");
                validate_deep(&TreeImage::of_rtree(&t), DeepChecks::dynamic())
                    .unwrap_or_else(|e| panic!("{ctx}: drain: {e}"));
            }
            assert!(t.is_empty(), "{ctx}");
        }
    }
}
