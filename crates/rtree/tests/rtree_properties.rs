//! Property-based tests for the dynamic R-tree over *rectangle* items
//! (regions have positive area, which exercises different code paths
//! from the point workloads: overlapping entries, covers-based FindLeaf,
//! non-zero enlargements).

use proptest::prelude::*;
use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats, SplitPolicy};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0..900.0f64, 0.0..900.0f64, 0.0..100.0f64, 0.0..100.0f64)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn arb_items(max: usize) -> impl Strategy<Value = Vec<(Rect, ItemId)>> {
    prop::collection::vec(arb_rect(), 0..max).prop_map(|rs| {
        rs.into_iter()
            .enumerate()
            .map(|(i, r)| (r, ItemId(i as u64)))
            .collect()
    })
}

fn all_policies() -> impl Strategy<Value = SplitPolicy> {
    prop::sample::select(vec![
        SplitPolicy::Linear,
        SplitPolicy::Quadratic,
        SplitPolicy::Exhaustive,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Inserting overlapping rectangles keeps the tree valid under every
    /// split policy and preserves intersection-search correctness.
    #[test]
    fn rect_inserts_valid_and_searchable(
        items in arb_items(120),
        policy in all_policies(),
        window in arb_rect(),
    ) {
        let mut tree = RTree::new(RTreeConfig::new(4, 2, policy));
        for &(r, id) in &items {
            tree.insert(r, id);
        }
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());

        let mut stats = SearchStats::default();
        let mut got = tree.search_intersecting(&window, &mut stats);
        got.sort();
        let mut expect: Vec<ItemId> = items
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Point queries agree with brute force on rectangle data.
    #[test]
    fn rect_point_queries_match(
        items in arb_items(100),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let mut tree = RTree::new(RTreeConfig::PAPER);
        for &(r, id) in &items {
            tree.insert(r, id);
        }
        let q = Point::new(qx, qy);
        let mut stats = SearchStats::default();
        let mut got = tree.point_query(q, &mut stats);
        got.sort();
        let mut expect: Vec<ItemId> = items
            .iter()
            .filter(|(r, _)| r.contains_point(q))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Removing every item in arbitrary order always succeeds and leaves
    /// an empty, shallow tree — the CondenseTree stress test.
    #[test]
    fn full_removal_in_shuffled_order(
        items in arb_items(80),
        policy in all_policies(),
        seed in any::<u64>(),
    ) {
        let mut tree = RTree::new(RTreeConfig::new(4, 2, policy));
        for &(r, id) in &items {
            tree.insert(r, id);
        }
        // Deterministic shuffle.
        let mut order: Vec<usize> = (0..items.len()).collect();
        let mut s = seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        for &k in &order {
            let (r, id) = items[k];
            prop_assert!(tree.remove(r, id), "lost {id}");
            prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        }
        prop_assert!(tree.is_empty());
        prop_assert_eq!(tree.depth(), 0);
        prop_assert_eq!(tree.node_count(), 1);
    }

    /// The search-stats node accounting is conservative: a window query
    /// never visits more nodes than exist, and always visits at least
    /// the root.
    #[test]
    fn stats_accounting_bounds(items in arb_items(150), window in arb_rect()) {
        let mut tree = RTree::new(RTreeConfig::PAPER);
        for &(r, id) in &items {
            tree.insert(r, id);
        }
        let mut stats = SearchStats::default();
        tree.search_within(&window, &mut stats);
        prop_assert!(stats.nodes_visited >= 1);
        prop_assert!(stats.nodes_visited as usize <= tree.node_count());
        prop_assert!(stats.leaf_nodes_visited <= stats.nodes_visited);
        prop_assert_eq!(stats.queries, 1);
    }

    /// Tree metrics are internally consistent: overlap never exceeds
    /// coverage, node count ≥ depth + 1, and items survive round trips.
    #[test]
    fn metrics_consistency(items in arb_items(150)) {
        let mut tree = RTree::new(RTreeConfig::PAPER);
        for &(r, id) in &items {
            tree.insert(r, id);
        }
        let m = tree.metrics();
        prop_assert!(m.overlap <= m.coverage + 1e-9 * m.coverage.max(1.0));
        prop_assert!(m.nodes > m.depth as usize);
        prop_assert_eq!(m.items, items.len());
        let mut listed: Vec<ItemId> = tree.items().into_iter().map(|(_, id)| id).collect();
        listed.sort();
        let mut expect: Vec<ItemId> = items.iter().map(|&(_, id)| id).collect();
        expect.sort();
        prop_assert_eq!(listed, expect);
    }
}
