//! Vendored stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! implements the proptest API subset the workspace's property tests
//! use: the [`proptest!`] macro, range/tuple/`&str`-regex strategies,
//! `prop_map`/`prop_filter`/`prop_filter_map`, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, [`any`], [`prop_oneof!`] and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberately accepted for an offline test
//! harness: inputs are generated from a per-test deterministic seed (no
//! persisted failure corpus), there is **no shrinking** (a failure
//! reports the panic for the raw generated case; rerun with
//! `PROPTEST_SEED` to reproduce), and `prop_assert*` are plain
//! panicking asserts.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` below `n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// FNV-1a hash of a string, used to derive per-test seeds.
pub fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategy trait and combinators.
pub mod strategy {
    use super::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred` (retrying internally).
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Maps through a fallible `f`, rejecting `None` (retrying
        /// internally).
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }

        /// Chains a dependent strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    const FILTER_RETRIES: usize = 1000;

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..FILTER_RETRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map exhausted retries: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<T> {
        /// The alternatives.
        pub options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.options.len());
            self.options[k].generate(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
    tuple_strategy!(A, B, C, D, E, G, H);
    tuple_strategy!(A, B, C, D, E, G, H, I);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

// ---- range strategies ----

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + (hi - lo) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---- regex-ish string strategies ----

/// `&str` strategies are interpreted as a small regex subset: literal
/// characters, `.`, character classes `[a-z0-9_]` (ranges + singletons),
/// and the quantifiers `*` `+` `?` `{n}` `{n,m}` applying to the
/// preceding atom. `*`/`+` cap repetition at 64.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        pattern::generate(self, rng)
    }
}

mod pattern {
    use super::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Literal(char),
        Any,
        Class(Vec<(char, char)>),
    }

    const UNBOUNDED_CAP: usize = 64;

    fn parse(pat: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pat.chars().peekable();
        let mut out: Vec<(Atom, usize, usize)> = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut ranges = Vec::new();
                    for d in chars.by_ref() {
                        if d == ']' {
                            break;
                        }
                        ranges.push(d);
                    }
                    // Convert "a-z" runs into ranges, everything else into
                    // singletons.
                    let mut spans: Vec<(char, char)> = Vec::new();
                    let mut i = 0;
                    while i < ranges.len() {
                        if i + 2 < ranges.len() && ranges[i + 1] == '-' {
                            spans.push((ranges[i], ranges[i + 2]));
                            i += 3;
                        } else {
                            spans.push((ranges[i], ranges[i]));
                            i += 1;
                        }
                    }
                    Atom::Class(spans)
                }
                '\\' => Atom::Literal(chars.next().unwrap_or('\\')),
                other => Atom::Literal(other),
            };
            // Optional quantifier.
            let (lo, hi) = match chars.peek() {
                Some('*') => {
                    chars.next();
                    (0, UNBOUNDED_CAP)
                }
                Some('+') => {
                    chars.next();
                    (1, UNBOUNDED_CAP)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    if let Some((a, b)) = spec.split_once(',') {
                        (
                            a.trim().parse().unwrap_or(0),
                            b.trim().parse().unwrap_or(UNBOUNDED_CAP),
                        )
                    } else {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                }
                _ => (1, 1),
            };
            out.push((atom, lo, hi));
        }
        out
    }

    /// Characters `.` draws from: printable ASCII plus a few awkward
    /// guests (whitespace, quotes, unicode) to stress lexers.
    fn any_char(rng: &mut TestRng) -> char {
        const SPICE: &[char] = &['\n', '\t', '\u{0}', 'é', '→', '𝄞', '"', '\''];
        if rng.below(8) == 0 {
            SPICE[rng.below(SPICE.len())]
        } else {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap()
        }
    }

    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pat) {
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Any => out.push(any_char(rng)),
                    Atom::Class(spans) => {
                        let (a, b) = spans[rng.below(spans.len())];
                        let (a, b) = (a as u32, b as u32);
                        let c = a + rng.below((b - a + 1) as usize) as u32;
                        out.push(char::from_u32(c).unwrap_or('a'));
                    }
                }
            }
        }
        out
    }
}

// ---- arbitrary ----

/// Types with a canonical "anything" strategy (used via [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any value of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2e6 - 1e6
    }
}

// ---- the `prop` facade module ----

/// The `prop::` facade (`prop::collection`, `prop::sample`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use std::ops::Range;

        /// Vec of values from `element`, with a length drawn from
        /// `len_range`.
        pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len_range }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len_range: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self
                    .len_range
                    .end
                    .saturating_sub(self.len_range.start)
                    .max(1);
                let len = self.len_range.start + rng.below(span);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::{Arbitrary, TestRng};

        /// Uniform choice from a fixed list.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select from empty list");
            Select(options)
        }

        /// See [`select`].
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len())].clone()
            }
        }

        /// An arbitrary index into a collection of as-yet-unknown size;
        /// resolve with [`Index::index`].
        #[derive(Debug, Clone, Copy)]
        pub struct Index(usize);

        impl Index {
            /// This index modulo `len` (`len > 0`).
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64() as usize)
            }
        }
    }
}

/// Everything tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig,
    };
}

// ---- macros ----

/// Panic-based replacement for proptest's error-collecting assert.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Panic-based `assert_eq`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Panic-based `assert_ne`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf {
            options: vec![$($crate::strategy::Strategy::boxed($strat)),+],
        }
    };
}

/// Declares property tests. Each case generates fresh inputs from the
/// argument strategies and runs the body; failures panic with the usual
/// assert diagnostics. Set `PROPTEST_SEED` to override the per-test
/// deterministic seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$attr:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut seed = $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                if let Ok(s) = std::env::var("PROPTEST_SEED") {
                    if let Ok(v) = s.parse::<u64>() {
                        seed = v;
                    }
                }
                for case in 0..config.cases {
                    let mut __rng = $crate::TestRng::new(
                        seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    (move || -> () { $body })();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 0.0..10.0f64, n in 3usize..7, s in prop::sample::select(vec!["a", "b"])) {
            prop_assert!((0.0..10.0).contains(&x));
            prop_assert!((3..7).contains(&n));
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1usize), (2usize..4).prop_map(|x| x * 10)]) {
            prop_assert!(v == 1 || v == 20 || v == 30);
        }

        #[test]
        fn assume_skips(mut n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            n += 2;
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn string_patterns(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn index_resolves(idx in any::<prop::sample::Index>(), len in 1usize..9) {
            prop_assert!(idx.index(len) < len);
        }
    }

    #[test]
    fn filter_map_retries() {
        use crate::strategy::Strategy;
        let strat = (0usize..100).prop_filter_map("odd", |x| (x % 2 == 0).then_some(x));
        let mut rng = crate::TestRng::new(5);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn dot_star_generates_varied_strings() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::new(9);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..40 {
            lens.insert(".*".generate(&mut rng).chars().count());
        }
        assert!(lens.len() > 3, "expected varied lengths, got {lens:?}");
    }
}
