//! Vendored stand-in for `criterion`.
//!
//! The build environment has no crates.io access; this shim keeps the
//! workspace's `[[bench]]` targets compiling and running with the same
//! source. It implements the API subset the benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId::new`], `b.iter(..)`, the [`criterion_group!`] /
//! [`criterion_main!`] macros) on a plain wall-clock harness: a short
//! warm-up, `sample_size` timed samples, and a mean/min report per
//! benchmark. No statistics, plots or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional id shape.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    recorded: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` repeatedly: a warm-up phase, then `sample_size`
    /// timed samples (each sample batches enough iterations to be
    /// measurable).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, also used to size the per-sample batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Aim for ~2ms per sample so fast routines are still resolvable.
        let batch = ((0.002 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.recorded.push(start.elapsed() / batch as u32);
        }
    }

    /// `iter_batched` with per-iteration setup (small-input flavour).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }
}

/// Batch sizing hint (ignored; present for source compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs.
    SmallInput,
    /// Large inputs.
    LargeInput,
}

/// The harness entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Accepted and ignored (sampling is already time-bounded).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted and ignored (no plots in the shim).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        run_one(&id.name, self.sample_size, self.warm_up, &mut f);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, warm_up: Duration, f: &mut F) {
    let mut b = Bencher {
        samples,
        warm_up,
        recorded: Vec::new(),
    };
    f(&mut b);
    if b.recorded.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let min = b.recorded.iter().min().unwrap();
    let sum: Duration = b.recorded.iter().sum();
    let mean = sum / b.recorded.len() as u32;
    println!("{name:<50} mean {mean:>12.2?}   min {min:>12.2?}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides samples per benchmark for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Accepted and ignored.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.effective_samples(),
            self.criterion.warm_up,
            &mut f,
        );
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.name);
        run_one(
            &label,
            self.effective_samples(),
            self.criterion.warm_up,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (printing already happened per-benchmark).
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_example(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum-to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, bench_example);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn config_form_compiles() {
        criterion_group! {
            name = configured;
            config = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
            targets = bench_example
        }
        configured();
    }
}
