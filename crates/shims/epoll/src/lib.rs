//! Vendored readiness-I/O shim over Linux `epoll(7)`.
//!
//! The build environment has no crates.io access, so instead of `mio` or
//! `polling` this crate wraps the four syscalls an event loop actually
//! needs — `epoll_create1` / `epoll_ctl` / `epoll_wait` / `eventfd` —
//! behind a small safe API:
//!
//! * [`Poll`] — owns the epoll instance; register file descriptors with
//!   a `u64` token and an [`Interest`] (read / write), then [`Poll::wait`]
//!   for [`Events`]. Registration is **level-triggered**: a readiness
//!   condition keeps firing until it is consumed, which makes partial
//!   reads/writes impossible to lose.
//! * [`Waker`] — an `eventfd` that lets any thread poke a sleeping
//!   `wait` call (workers use it to tell the event loop "responses are
//!   queued").
//! * [`raise_nofile_limit`] / [`listen_backlog`] — the two capacity
//!   knobs a connection-storm needs (`RLIMIT_NOFILE` and a deeper accept
//!   backlog than std's fixed 128).
//!
//! All `unsafe` in the workspace lives here, confined to the raw
//! syscall boundary; every wrapper returns `io::Result` mapped from
//! `errno`. The declarations are `extern "C"` against the libc that std
//! already links — no new dependency.

#![cfg(target_os = "linux")]
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

// ---------------------------------------------------------------------
// Raw syscall surface (the only unsafe in the workspace)
// ---------------------------------------------------------------------

/// Linux `struct epoll_event`. Packed on x86-64 (the kernel ABI), C
/// layout elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const RLIMIT_NOFILE: c_int = 7;

#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// ---------------------------------------------------------------------
// Interest / Event
// ---------------------------------------------------------------------

/// What readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd accepts more outgoing bytes.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification out of [`Poll::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer hang-up so pending bytes/EOF get read).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition on the fd.
    pub is_error: bool,
}

/// Reusable buffer of readiness notifications.
pub struct Events {
    raw: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            raw: vec![EpollEvent { events: 0, data: 0 }; capacity.clamp(1, 4096)],
            len: 0,
        }
    }

    /// Iterates the events delivered by the last [`Poll::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.raw[..self.len].iter().map(|e| {
            // Copy out of the (possibly packed) struct before use.
            let bits = e.events;
            let token = e.data;
            Event {
                token,
                readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                writable: bits & EPOLLOUT != 0,
                is_error: bits & (EPOLLERR | EPOLLHUP) != 0,
            }
        })
    }

    /// Number of events delivered by the last wait.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the last wait delivered nothing (timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

// ---------------------------------------------------------------------
// Poll
// ---------------------------------------------------------------------

/// An owned epoll instance.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.bits(),
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Starts watching `fd` (level-triggered) under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes an existing registration's interest (token may change too).
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Stops watching `fd`.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        // A non-null event pointer keeps pre-2.6.9 kernels happy; the
        // kernel ignores it for DEL.
        // SAFETY: as in `ctl`.
        cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = wait forever). Returns the number of events
    /// written into `events`; `0` means timeout. `EINTR` is retried.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(c_int::MAX as u128) as c_int,
        };
        loop {
            // SAFETY: the buffer is sized to `raw.len()` entries and
            // lives across the call.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    events.raw.as_mut_ptr(),
                    events.raw.len() as c_int,
                    timeout_ms,
                )
            };
            if n >= 0 {
                events.len = n as usize;
                return Ok(n as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                events.len = 0;
                return Err(err);
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.epfd) };
    }
}

// ---------------------------------------------------------------------
// Waker
// ---------------------------------------------------------------------

/// A cross-thread wake-up for a sleeping [`Poll::wait`], backed by a
/// nonblocking `eventfd`. Register [`Waker::fd`] with read interest
/// under a reserved token; [`Waker::wake`] from any thread makes the fd
/// readable; [`Waker::drain`] resets it.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: plain syscall.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with the poller (read interest).
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Makes the fd readable, waking the poller. Callable from any
    /// thread; never blocks (an already-pending wake is absorbed by the
    /// eventfd counter).
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a stack value; eventfd writes of
        // 8 bytes are atomic. EAGAIN (counter at max) still leaves the
        // fd readable, which is all a wake needs.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Consumes pending wakes so the fd stops polling readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reads 8 bytes into a stack value; the fd is
        // nonblocking, so this returns immediately either way.
        unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: we own the fd and drop it exactly once.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------
// Capacity knobs
// ---------------------------------------------------------------------

/// Raises `RLIMIT_NOFILE` so one process can hold `target` descriptors.
/// Best-effort: unprivileged processes are clamped to their hard limit
/// (raising past it wants `CAP_SYS_RESOURCE`). Returns the soft limit
/// now in effect.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: out-pointer to a stack struct of the kernel's layout.
    cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
    if lim.rlim_cur >= target {
        return Ok(lim.rlim_cur);
    }
    let want = RLimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max.max(target),
    };
    // SAFETY: in-pointer to a stack struct.
    if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
        return Ok(target);
    }
    // No privilege to raise the hard limit: settle for all of it.
    let capped = RLimit {
        rlim_cur: lim.rlim_max,
        rlim_max: lim.rlim_max,
    };
    // SAFETY: as above.
    cvt(unsafe { setrlimit(RLIMIT_NOFILE, &capped) })?;
    Ok(lim.rlim_max)
}

/// Re-issues `listen(2)` on an already-listening socket to deepen its
/// accept backlog (std's `TcpListener::bind` hard-codes 128, which a
/// connection storm overflows into SYN retransmits).
pub fn listen_backlog(fd: RawFd, backlog: i32) -> io::Result<()> {
    // SAFETY: plain syscall on a caller-owned fd.
    cvt(unsafe { listen(fd, backlog) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_wakes_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = Waker::new().unwrap();
        poll.register(waker.fd(), 7, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        // No wake: timeout, zero events.
        let n = poll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());

        waker.wake();
        let n = poll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, 7);
        assert!(ev.readable);

        // Level-triggered: still readable until drained.
        let n = poll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 1);
        waker.drain();
        let n = poll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn socket_readiness_and_reregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poll = Poll::new().unwrap();
        poll.register(listener.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing pending yet.
        assert_eq!(
            poll.wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap(),
            0
        );

        let mut client = TcpStream::connect(addr).unwrap();
        let n = poll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, 1);

        let (mut accepted, _) = listener.accept().unwrap();
        accepted.set_nonblocking(true).unwrap();
        poll.register(accepted.as_raw_fd(), 2, Interest::BOTH)
            .unwrap();
        // A fresh socket is writable immediately.
        let n = poll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        let ev = events.iter().find(|e| e.token == 2).unwrap();
        assert!(ev.writable && !ev.readable);

        // Drop write interest, send bytes: next event is read-only.
        poll.reregister(accepted.as_raw_fd(), 2, Interest::READABLE)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let n = poll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.readable && !ev.writable);
        let mut buf = [0u8; 8];
        assert_eq!(accepted.read(&mut buf).unwrap(), 4);

        poll.deregister(accepted.as_raw_fd()).unwrap();
        client.write_all(b"more").unwrap();
        assert_eq!(
            poll.wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0,
            "deregistered fd must not fire"
        );
    }

    #[test]
    fn peer_hangup_reads_as_readable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let poll = Poll::new().unwrap();
        poll.register(accepted.as_raw_fd(), 3, Interest::READABLE)
            .unwrap();
        drop(client);
        let mut events = Events::with_capacity(4);
        let n = poll
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(
            events.iter().next().unwrap().readable,
            "EOF must wake reads"
        );
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotone() {
        let before = raise_nofile_limit(64).unwrap();
        assert!(before >= 64);
        // Asking for less than we have is a no-op reporting the current.
        let again = raise_nofile_limit(32).unwrap();
        assert!(again >= before.min(64));
    }

    #[test]
    fn listen_backlog_accepts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listen_backlog(listener.as_raw_fd(), 1024).unwrap();
        let addr = listener.local_addr().unwrap();
        let _c = TcpStream::connect(addr).unwrap();
        listener.accept().unwrap();
    }
}
