//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal, dependency-free implementation of the exact API
//! subset the repository uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`distributions::Distribution`]. The generator is a fixed xoshiro256++
//! seeded through SplitMix64, so all seeded workloads are deterministic
//! across platforms (which the experiment harness relies on). It makes no
//! attempt to be value-compatible with upstream `rand 0.8`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty f32 range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic and platform-independent.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions (the `Standard` distribution plus the trait user code
/// implements for its own distributions, e.g. the workload's Gaussian).
pub mod distributions {
    use super::Rng;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: `f64`/`f32` uniform in [0, 1),
    /// integers and `bool` uniform over their domain.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            super::unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            super::unit_f64(rng) as f32
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-3.0..7.0);
            assert!((-3.0..7.0).contains(&x));
            let n: usize = rng.gen_range(0..10);
            assert!(n < 10);
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
