//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no crates.io access; this shim provides the
//! `parking_lot` API subset the workspace uses (a poison-free [`Mutex`]
//! and [`RwLock`] whose `lock`/`read`/`write` return guards directly).

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error:
/// a panic while holding the lock simply passes the data through.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock with poison-free guards.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // no poison propagation
    }
}
