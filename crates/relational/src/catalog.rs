//! The catalog: named relations and their secondary indexes.

use crate::btree::BPlusTree;
use crate::error::RelationalError;
use crate::heap::{Relation, TupleId};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;

/// A database catalog: relations by name, plus B+tree indexes on
/// alphanumeric columns. Index maintenance is automatic for inserts and
/// deletes that go through the catalog.
///
/// `Clone` deep-copies every relation and index: the snapshot publication
/// path of the query service clones the whole database, mutates the copy
/// off-line, and atomically swaps it in.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
    /// `(relation, column) → index`.
    indexes: HashMap<(String, String), BPlusTree>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Creates a relation.
    pub fn create_relation(&mut self, name: &str, schema: Schema) -> Result<(), RelationalError> {
        if self.relations.contains_key(name) {
            return Err(RelationalError::RelationExists(name.to_owned()));
        }
        self.relations
            .insert(name.to_owned(), Relation::new(name, schema));
        Ok(())
    }

    /// Borrows a relation.
    pub fn relation(&self, name: &str) -> Result<&Relation, RelationalError> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::NoSuchRelation(name.to_owned()))
    }

    /// Relation names, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Creates a B+tree index on `relation.column`, back-filling existing
    /// tuples.
    pub fn create_index(&mut self, relation: &str, column: &str) -> Result<(), RelationalError> {
        let rel = self
            .relations
            .get(relation)
            .ok_or_else(|| RelationalError::NoSuchRelation(relation.to_owned()))?;
        let idx = rel
            .schema()
            .index_of(column)
            .ok_or_else(|| RelationalError::NoSuchColumn(column.to_owned()))?;
        let mut tree = BPlusTree::new();
        for (tid, tuple) in rel.scan() {
            tree.insert(tuple[idx].clone(), tid);
        }
        self.indexes
            .insert((relation.to_owned(), column.to_owned()), tree);
        Ok(())
    }

    /// The index on `relation.column`, if one exists.
    pub fn index(&self, relation: &str, column: &str) -> Option<&BPlusTree> {
        self.indexes.get(&(relation.to_owned(), column.to_owned()))
    }

    /// Inserts a tuple, maintaining all indexes on the relation.
    pub fn insert(
        &mut self,
        relation: &str,
        tuple: Vec<Value>,
    ) -> Result<TupleId, RelationalError> {
        let rel = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| RelationalError::NoSuchRelation(relation.to_owned()))?;
        let schema = rel.schema().clone();
        let tid = rel.insert(tuple.clone())?;
        for ((r, col), tree) in self.indexes.iter_mut() {
            if r == relation {
                let idx = schema.index_of(col).expect("index column exists");
                tree.insert(tuple[idx].clone(), tid);
            }
        }
        Ok(tid)
    }

    /// Deletes a tuple, maintaining all indexes on the relation.
    pub fn delete(&mut self, relation: &str, tid: TupleId) -> Result<Vec<Value>, RelationalError> {
        let rel = self
            .relations
            .get_mut(relation)
            .ok_or_else(|| RelationalError::NoSuchRelation(relation.to_owned()))?;
        let schema = rel.schema().clone();
        let tuple = rel.delete(tid)?;
        for ((r, col), tree) in self.indexes.iter_mut() {
            if r == relation {
                let idx = schema.index_of(col).expect("index column exists");
                tree.remove(&tuple[idx], tid);
            }
        }
        Ok(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn catalog_with_cities() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_relation(
            "cities",
            Schema::new(vec![
                Column::new("city", ColumnType::Str),
                Column::new("population", ColumnType::Int),
            ])
            .unwrap(),
        )
        .unwrap();
        cat
    }

    #[test]
    fn create_and_lookup() {
        let cat = catalog_with_cities();
        assert!(cat.relation("cities").is_ok());
        assert!(cat.relation("nope").is_err());
        assert_eq!(cat.relation_names(), vec!["cities"]);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut cat = catalog_with_cities();
        let schema = Schema::new(vec![]).unwrap();
        assert!(matches!(
            cat.create_relation("cities", schema),
            Err(RelationalError::RelationExists(_))
        ));
    }

    #[test]
    fn index_backfill_and_maintenance() {
        let mut cat = catalog_with_cities();
        let a = cat
            .insert("cities", vec!["Boston".into(), 4_900_000i64.into()])
            .unwrap();
        cat.create_index("cities", "population").unwrap();
        // Backfilled.
        assert_eq!(
            cat.index("cities", "population")
                .unwrap()
                .get(&Value::Int(4_900_000)),
            &[a]
        );
        // Maintained on insert.
        let b = cat
            .insert("cities", vec!["Miami".into(), 6_100_000i64.into()])
            .unwrap();
        assert_eq!(
            cat.index("cities", "population")
                .unwrap()
                .get(&Value::Int(6_100_000)),
            &[b]
        );
        // Maintained on delete.
        cat.delete("cities", a).unwrap();
        assert!(cat
            .index("cities", "population")
            .unwrap()
            .get(&Value::Int(4_900_000))
            .is_empty());
        // Range through the index.
        let big = cat
            .index("cities", "population")
            .unwrap()
            .range(Some(&Value::Int(1_000_000)), None);
        assert_eq!(big.len(), 1);
    }

    #[test]
    fn index_on_missing_column_rejected() {
        let mut cat = catalog_with_cities();
        assert!(cat.create_index("cities", "altitude").is_err());
        assert!(cat.create_index("towns", "city").is_err());
    }
}
