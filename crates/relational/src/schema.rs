//! Relation schemas.

use crate::error::RelationalError;
use crate::value::Value;
use std::fmt;

/// Column data types. `Pointer` marks pictorial `loc` columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Pictorial pointer (`loc`).
    Pointer,
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Int => "int",
            ColumnType::Float => "float",
            ColumnType::Str => "str",
            ColumnType::Pointer => "pointer",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (case-sensitive).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a column.
    pub fn new(name: &str, ty: ColumnType) -> Self {
        Column {
            name: name.to_owned(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema, rejecting duplicate column names.
    pub fn new(columns: Vec<Column>) -> Result<Self, RelationalError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(RelationalError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Column lookup by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Validates a tuple against this schema (arity and types; NULL fits
    /// any column).
    pub fn check(&self, tuple: &[Value]) -> Result<(), RelationalError> {
        if tuple.len() != self.arity() {
            return Err(RelationalError::ArityMismatch {
                expected: self.arity(),
                got: tuple.len(),
            });
        }
        for (v, c) in tuple.iter().zip(&self.columns) {
            if let Some(t) = v.column_type() {
                if t != c.ty {
                    return Err(RelationalError::TypeMismatch {
                        column: c.name.clone(),
                        expected: c.ty,
                        got: t,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities_schema() -> Schema {
        Schema::new(vec![
            Column::new("city", ColumnType::Str),
            Column::new("state", ColumnType::Str),
            Column::new("population", ColumnType::Int),
            Column::new("loc", ColumnType::Pointer),
        ])
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = cities_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("population"), Some(2));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.column("loc").unwrap().ty, ColumnType::Pointer);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("a", ColumnType::Str),
        ]);
        assert!(matches!(r, Err(RelationalError::DuplicateColumn(_))));
    }

    #[test]
    fn tuple_check() {
        let s = cities_schema();
        let ok = vec![
            Value::str("Boston"),
            Value::str("MA"),
            Value::Int(4_900_000),
            Value::Pointer(7),
        ];
        assert!(s.check(&ok).is_ok());
        let wrong_type = vec![
            Value::str("Boston"),
            Value::str("MA"),
            Value::str("many"),
            Value::Pointer(7),
        ];
        assert!(matches!(
            s.check(&wrong_type),
            Err(RelationalError::TypeMismatch { .. })
        ));
        let wrong_arity = vec![Value::str("Boston")];
        assert!(matches!(
            s.check(&wrong_arity),
            Err(RelationalError::ArityMismatch { .. })
        ));
        // NULL fits anywhere.
        let with_null = vec![
            Value::Null,
            Value::str("MA"),
            Value::Int(1),
            Value::Pointer(0),
        ];
        assert!(s.check(&with_null).is_ok());
    }
}
