//! A from-scratch in-memory B+tree for alphanumeric column indexes.
//!
//! R-trees "can be loosely described as a higher-dimensional
//! generalization of B-trees" (§3); this is the one-dimensional ancestor,
//! used to index the alphanumeric columns of pictorial relations ("the
//! usual way", §2.1) — e.g. `population` in the Figure 2.1 query.
//!
//! Design: order-`B` nodes with `Vec` storage; duplicate keys keep a
//! posting list of [`TupleId`]s. Deletion removes postings and empties
//! keys lazily without rebalancing (structure stays a valid search tree;
//! occupancy can drop below half after heavy deletion — acceptable for an
//! in-memory secondary index and documented here).

use crate::heap::TupleId;
use crate::value::Value;

/// Maximum keys per node for [`BPlusTree::new`].
pub const DEFAULT_ORDER: usize = 16;

/// A B+tree multimap from [`Value`] keys to [`TupleId`] postings.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    order: usize,
    root: Node,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Value>,
        postings: Vec<Vec<TupleId>>,
    },
    Internal {
        /// `separators[i]` is the smallest key reachable in
        /// `children[i + 1]`.
        separators: Vec<Value>,
        children: Vec<Node>,
    },
}

impl BPlusTree {
    /// Creates an empty tree with [`DEFAULT_ORDER`].
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// Creates an empty tree with a given node order (max keys per node).
    ///
    /// # Panics
    ///
    /// Panics if `order < 3`.
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 3, "order must be at least 3");
        BPlusTree {
            order,
            root: Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of postings (key/tuple pairs).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no postings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a posting.
    pub fn insert(&mut self, key: Value, tid: TupleId) {
        self.len += 1;
        if let Some((sep, right)) = self.root.insert(key, tid, self.order) {
            // Root split: grow upward.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Leaf {
                    keys: Vec::new(),
                    postings: Vec::new(),
                },
            );
            self.root = Node::Internal {
                separators: vec![sep],
                children: vec![old_root, *right],
            };
        }
    }

    /// Removes one posting; `true` if it was present.
    pub fn remove(&mut self, key: &Value, tid: TupleId) -> bool {
        let removed = self.root.remove(key, tid);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// All tuple ids for an exact key, in insertion order.
    pub fn get(&self, key: &Value) -> &[TupleId] {
        self.root.get(key)
    }

    /// Postings with `lo ≤ key ≤ hi` (either bound optional), in key
    /// order.
    pub fn range(&self, lo: Option<&Value>, hi: Option<&Value>) -> Vec<(Value, TupleId)> {
        let mut out = Vec::new();
        self.root.range(lo, hi, &mut out);
        out
    }

    /// Checks structural invariants (sorted keys, separator correctness,
    /// uniform depth), returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut depth = None;
        self.root.validate(None, None, 0, &mut depth, self.order)?;
        let counted = self.root.count();
        if counted != self.len {
            return Err(format!("len {} != counted {}", self.len, counted));
        }
        Ok(())
    }
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Node {
    /// Inserts; on split returns the separator and the new right sibling.
    fn insert(&mut self, key: Value, tid: TupleId, order: usize) -> Option<(Value, Box<Node>)> {
        match self {
            Node::Leaf { keys, postings } => match keys.binary_search(&key) {
                Ok(i) => {
                    postings[i].push(tid);
                    None
                }
                Err(i) => {
                    keys.insert(i, key);
                    postings.insert(i, vec![tid]);
                    if keys.len() > order {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_postings = postings.split_off(mid);
                        let sep = right_keys[0].clone();
                        Some((
                            sep,
                            Box::new(Node::Leaf {
                                keys: right_keys,
                                postings: right_postings,
                            }),
                        ))
                    } else {
                        None
                    }
                }
            },
            Node::Internal {
                separators,
                children,
            } => {
                let idx = separators.partition_point(|s| *s <= key);
                let split = children[idx].insert(key, tid, order)?;
                let (sep, right) = split;
                separators.insert(idx, sep);
                children.insert(idx + 1, *right);
                if separators.len() > order {
                    let mid = separators.len() / 2;
                    // separators[mid] moves up; right gets mid+1.. keys.
                    let up = separators[mid].clone();
                    let right_seps = separators.split_off(mid + 1);
                    separators.pop(); // drop the promoted separator
                    let right_children = children.split_off(mid + 1);
                    return Some((
                        up,
                        Box::new(Node::Internal {
                            separators: right_seps,
                            children: right_children,
                        }),
                    ));
                }
                None
            }
        }
    }

    fn remove(&mut self, key: &Value, tid: TupleId) -> bool {
        match self {
            Node::Leaf { keys, postings } => match keys.binary_search(key) {
                Ok(i) => {
                    let list = &mut postings[i];
                    if let Some(pos) = list.iter().position(|&t| t == tid) {
                        list.remove(pos);
                        if list.is_empty() {
                            keys.remove(i);
                            postings.remove(i);
                        }
                        true
                    } else {
                        false
                    }
                }
                Err(_) => false,
            },
            Node::Internal {
                separators,
                children,
            } => {
                let idx = separators.partition_point(|s| s <= key);
                children[idx].remove(key, tid)
            }
        }
    }

    fn get(&self, key: &Value) -> &[TupleId] {
        match self {
            Node::Leaf { keys, postings } => match keys.binary_search(key) {
                Ok(i) => &postings[i],
                Err(_) => &[],
            },
            Node::Internal {
                separators,
                children,
            } => {
                let idx = separators.partition_point(|s| s <= key);
                children[idx].get(key)
            }
        }
    }

    fn range(&self, lo: Option<&Value>, hi: Option<&Value>, out: &mut Vec<(Value, TupleId)>) {
        match self {
            Node::Leaf { keys, postings } => {
                for (k, list) in keys.iter().zip(postings) {
                    if lo.is_some_and(|l| k < l) {
                        continue;
                    }
                    if hi.is_some_and(|h| k > h) {
                        break;
                    }
                    for &tid in list {
                        out.push((k.clone(), tid));
                    }
                }
            }
            Node::Internal {
                separators,
                children,
            } => {
                // Children overlapping [lo, hi].
                let start = match lo {
                    Some(l) => separators.partition_point(|s| s <= l),
                    None => 0,
                };
                let end = match hi {
                    Some(h) => separators.partition_point(|s| s <= h),
                    None => separators.len(),
                };
                for child in &children[start..=end] {
                    child.range(lo, hi, out);
                }
            }
        }
    }

    fn count(&self) -> usize {
        match self {
            Node::Leaf { postings, .. } => postings.iter().map(Vec::len).sum(),
            Node::Internal { children, .. } => children.iter().map(Node::count).sum(),
        }
    }

    fn validate(
        &self,
        lo: Option<&Value>,
        hi: Option<&Value>,
        depth: usize,
        leaf_depth: &mut Option<usize>,
        order: usize,
    ) -> Result<(), String> {
        match self {
            Node::Leaf { keys, postings } => {
                if keys.len() != postings.len() {
                    return Err("keys/postings length mismatch".into());
                }
                if keys.len() > order {
                    return Err(format!("leaf with {} keys > order {}", keys.len(), order));
                }
                for w in keys.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("unsorted leaf keys: {} >= {}", w[0], w[1]));
                    }
                }
                for k in keys {
                    if lo.is_some_and(|l| k < l) || hi.is_some_and(|h| k >= h) {
                        return Err(format!("leaf key {k} out of separator bounds"));
                    }
                }
                if postings.iter().any(Vec::is_empty) {
                    return Err("empty posting list retained".into());
                }
                match leaf_depth {
                    None => *leaf_depth = Some(depth),
                    Some(d) if *d != depth => {
                        return Err(format!("leaves at depths {d} and {depth}"))
                    }
                    _ => {}
                }
                Ok(())
            }
            Node::Internal {
                separators,
                children,
            } => {
                if children.len() != separators.len() + 1 {
                    return Err("child/separator count mismatch".into());
                }
                if separators.len() > order {
                    return Err(format!("internal with {} separators", separators.len()));
                }
                for w in separators.windows(2) {
                    if w[0] >= w[1] {
                        return Err("unsorted separators".into());
                    }
                }
                for (i, child) in children.iter().enumerate() {
                    let child_lo = if i == 0 { lo } else { Some(&separators[i - 1]) };
                    let child_hi = if i == separators.len() {
                        hi
                    } else {
                        Some(&separators[i])
                    };
                    child.validate(child_lo, child_hi, depth + 1, leaf_depth, order)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn key(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn insert_get() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..100 {
            t.insert(key(i * 7 % 101), TupleId(i as u64));
        }
        t.validate().unwrap();
        assert_eq!(t.len(), 100);
        // Every key findable.
        for i in 0..100i64 {
            let k = key(i * 7 % 101);
            assert!(t.get(&k).contains(&TupleId(i as u64)), "key {k}");
        }
        assert!(t.get(&key(555)).is_empty());
    }

    #[test]
    fn duplicates_accumulate() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..10 {
            t.insert(key(42), TupleId(i));
        }
        assert_eq!(t.get(&key(42)).len(), 10);
        t.validate().unwrap();
    }

    #[test]
    fn remove_postings() {
        let mut t = BPlusTree::with_order(4);
        t.insert(key(1), TupleId(10));
        t.insert(key(1), TupleId(11));
        assert!(t.remove(&key(1), TupleId(10)));
        assert!(!t.remove(&key(1), TupleId(10)));
        assert_eq!(t.get(&key(1)), &[TupleId(11)]);
        assert!(t.remove(&key(1), TupleId(11)));
        assert!(t.get(&key(1)).is_empty());
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn range_queries() {
        let mut t = BPlusTree::with_order(4);
        for i in 0..50 {
            t.insert(key(i), TupleId(i as u64));
        }
        let r = t.range(Some(&key(10)), Some(&key(19)));
        assert_eq!(r.len(), 10);
        assert_eq!(r[0].0, key(10));
        assert_eq!(r[9].0, key(19));
        // Keys in order.
        for w in r.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Open bounds.
        assert_eq!(t.range(None, None).len(), 50);
        assert_eq!(t.range(Some(&key(45)), None).len(), 5);
        assert_eq!(t.range(None, Some(&key(4))).len(), 5);
        assert!(t.range(Some(&key(100)), Some(&key(200))).is_empty());
    }

    #[test]
    fn string_keys() {
        let mut t = BPlusTree::with_order(4);
        let words = ["delta", "alpha", "echo", "charlie", "bravo"];
        for (i, w) in words.iter().enumerate() {
            t.insert(Value::str(w), TupleId(i as u64));
        }
        t.validate().unwrap();
        let all = t.range(None, None);
        let sorted: Vec<&str> = all.iter().map(|(k, _)| k.as_str().unwrap()).collect();
        assert_eq!(sorted, ["alpha", "bravo", "charlie", "delta", "echo"]);
    }

    #[test]
    fn model_check_against_btreemap() {
        let mut t = BPlusTree::with_order(3); // small order → many splits
        let mut model: BTreeMap<i64, Vec<TupleId>> = BTreeMap::new();
        let mut s = 99u64;
        for step in 0..2000u64 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((s >> 33) % 200) as i64;
            let tid = TupleId(step);
            if (s >> 7).is_multiple_of(3) {
                // Remove a random posting of k, if any.
                let removed_model = model.get_mut(&k).and_then(|v| v.pop());
                match removed_model {
                    Some(tid) => {
                        if model.get(&k).is_some_and(Vec::is_empty) {
                            model.remove(&k);
                        }
                        assert!(t.remove(&key(k), tid), "step {step}: lost posting");
                    }
                    None => assert!(!t.remove(&key(k), TupleId(u64::MAX))),
                }
            } else {
                t.insert(key(k), tid);
                model.entry(k).or_default().push(tid);
            }
        }
        t.validate().unwrap();
        assert_eq!(t.len(), model.values().map(Vec::len).sum::<usize>());
        for (k, tids) in &model {
            let mut got = t.get(&key(*k)).to_vec();
            let mut expect = tids.clone();
            got.sort();
            expect.sort();
            assert_eq!(got, expect, "key {k}");
        }
        // Full range matches model order.
        let all = t.range(None, None);
        let expect_count: usize = model.values().map(Vec::len).sum();
        assert_eq!(all.len(), expect_count);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_order_rejected() {
        BPlusTree::with_order(2);
    }
}
