//! Boolean predicates over tuples — the alphanumeric `where`-clause.

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Applies the operator; comparisons involving NULL are false
    /// (SQL-style three-valued logic collapsed to false).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        if matches!(a, Value::Null) || matches!(b, Value::Null) {
            return false;
        }
        let ord = a.cmp(b);
        match self {
            CompareOp::Eq => ord.is_eq(),
            CompareOp::Ne => ord.is_ne(),
            CompareOp::Lt => ord.is_lt(),
            CompareOp::Le => ord.is_le(),
            CompareOp::Gt => ord.is_gt(),
            CompareOp::Ge => ord.is_ge(),
        }
    }
}

/// A predicate tree over one relation's tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `column op constant`.
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CompareOp,
        /// Right-hand constant.
        value: Value,
    },
    /// Both subpredicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// Either subpredicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// Subpredicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience: `column op value`.
    pub fn compare(column: &str, op: CompareOp, value: Value) -> Predicate {
        Predicate::Compare {
            column: column.to_owned(),
            op,
            value,
        }
    }

    /// Evaluates against a tuple under `schema`.
    pub fn eval(&self, schema: &Schema, tuple: &[Value]) -> Result<bool, RelationalError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Compare { column, op, value } => {
                let idx = schema
                    .index_of(column)
                    .ok_or_else(|| RelationalError::NoSuchColumn(column.clone()))?;
                Ok(op.eval(&tuple[idx], value))
            }
            Predicate::And(a, b) => Ok(a.eval(schema, tuple)? && b.eval(schema, tuple)?),
            Predicate::Or(a, b) => Ok(a.eval(schema, tuple)? || b.eval(schema, tuple)?),
            Predicate::Not(p) => Ok(!p.eval(schema, tuple)?),
        }
    }

    /// `a AND b`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `a OR b`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("city", ColumnType::Str),
            Column::new("population", ColumnType::Int),
        ])
        .unwrap()
    }

    fn boston() -> Vec<Value> {
        vec![Value::str("Boston"), Value::Int(4_900_000)]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let p = Predicate::compare("population", CompareOp::Gt, Value::Int(450_000));
        assert!(p.eval(&s, &boston()).unwrap());
        let p2 = Predicate::compare("city", CompareOp::Eq, Value::str("Miami"));
        assert!(!p2.eval(&s, &boston()).unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let s = schema();
        let big = Predicate::compare("population", CompareOp::Ge, Value::Int(1_000_000));
        let is_boston = Predicate::compare("city", CompareOp::Eq, Value::str("Boston"));
        assert!(big
            .clone()
            .and(is_boston.clone())
            .eval(&s, &boston())
            .unwrap());
        assert!(big
            .clone()
            .or(Predicate::compare("city", CompareOp::Eq, Value::str("X")))
            .eval(&s, &boston())
            .unwrap());
        assert!(!Predicate::Not(Box::new(big)).eval(&s, &boston()).unwrap());
        assert!(Predicate::True.eval(&s, &boston()).unwrap());
    }

    #[test]
    fn null_comparisons_are_false() {
        let s = schema();
        let tuple = vec![Value::Null, Value::Int(1)];
        let p = Predicate::compare("city", CompareOp::Eq, Value::str("Boston"));
        assert!(!p.eval(&s, &tuple).unwrap());
        let p2 = Predicate::compare("city", CompareOp::Ne, Value::str("Boston"));
        assert!(!p2.eval(&s, &tuple).unwrap());
    }

    #[test]
    fn unknown_column_errors() {
        let s = schema();
        let p = Predicate::compare("altitude", CompareOp::Eq, Value::Int(1));
        assert!(p.eval(&s, &boston()).is_err());
    }

    #[test]
    fn numeric_cross_type_compare() {
        let s = schema();
        let p = Predicate::compare("population", CompareOp::Lt, Value::Float(5e6));
        assert!(p.eval(&s, &boston()).unwrap());
    }
}
