//! Typed values, including the pictorial `pointer` type.

use std::cmp::Ordering;
use std::fmt;

/// A value of a relation column.
///
/// `Pointer` is the paper's backward identifier "of type pointer which
/// points to the area on the picture (to the leaf-node of the R-tree)"
/// (§2.1): it holds the object id that the picture's R-tree indexes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Pointer into a picture's object table (the `loc` column).
    Pointer(u64),
}

impl Value {
    /// Convenience constructor from `&str`.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_owned())
    }

    /// The value's type, or `None` for NULL.
    pub fn column_type(&self) -> Option<crate::schema::ColumnType> {
        use crate::schema::ColumnType::*;
        match self {
            Value::Null => None,
            Value::Int(_) => Some(Int),
            Value::Float(_) => Some(Float),
            Value::Str(_) => Some(Str),
            Value::Pointer(_) => Some(Pointer),
        }
    }

    /// Numeric view (ints widen to float), `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Pointer view.
    pub fn as_pointer(&self) -> Option<u64> {
        match self {
            Value::Pointer(p) => Some(*p),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // numerics compare with each other
            Value::Str(_) => 2,
            Value::Pointer(_) => 3,
        }
    }
}

impl Eq for Value {}

/// Total order: NULL < numerics (ints and floats interleaved by value) <
/// strings < pointers. Floats order by `total_cmp`. This deterministic
/// cross-type order is what the B+tree and sort operators use.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Pointer(a), Value::Pointer(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Pointer(p) => write!(f, "loc@{p}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_ordering() {
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert_eq!(Value::Int(2).cmp(&Value::Float(2.0)), Ordering::Equal);
    }

    #[test]
    fn type_rank_ordering() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Int(i64::MAX) < Value::str("a"));
        assert!(Value::str("zzz") < Value::Pointer(0));
    }

    #[test]
    fn string_ordering() {
        assert!(Value::str("alpha") < Value::str("beta"));
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::str("x").as_f64(), None);
        assert_eq!(Value::Pointer(9).as_pointer(), Some(9));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Pointer(4).to_string(), "loc@4");
        assert_eq!(Value::str("Boston").to_string(), "Boston");
    }
}
