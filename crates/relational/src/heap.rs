//! Heap-organized relations with stable tuple ids.

use crate::error::RelationalError;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// Stable identifier of a tuple within one relation — what the R-tree
/// leaves point back at (the paper's "tuple-identifier").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u64);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A relation: schema plus a slotted heap of tuples.
///
/// Tuple ids are never reused, so pointers held by spatial indexes stay
/// valid or dangle detectably.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    slots: Vec<Option<Vec<Value>>>,
    live: usize,
}

impl Relation {
    /// Creates an empty relation.
    pub fn new(name: &str, schema: Schema) -> Self {
        Relation {
            name: name.to_owned(),
            schema,
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a tuple after schema validation, returning its id.
    pub fn insert(&mut self, tuple: Vec<Value>) -> Result<TupleId, RelationalError> {
        self.schema.check(&tuple)?;
        let id = TupleId(self.slots.len() as u64);
        self.slots.push(Some(tuple));
        self.live += 1;
        Ok(id)
    }

    /// Fetches a tuple by id.
    pub fn get(&self, id: TupleId) -> Result<&[Value], RelationalError> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_deref())
            .ok_or(RelationalError::NoSuchTuple(id.0))
    }

    /// Deletes a tuple by id; the id is never reused.
    pub fn delete(&mut self, id: TupleId) -> Result<Vec<Value>, RelationalError> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .ok_or(RelationalError::NoSuchTuple(id.0))?;
        let tuple = slot.take().ok_or(RelationalError::NoSuchTuple(id.0))?;
        self.live -= 1;
        Ok(tuple)
    }

    /// Replaces a tuple in place (schema-checked).
    pub fn update(&mut self, id: TupleId, tuple: Vec<Value>) -> Result<(), RelationalError> {
        self.schema.check(&tuple)?;
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .ok_or(RelationalError::NoSuchTuple(id.0))?;
        if slot.is_none() {
            return Err(RelationalError::NoSuchTuple(id.0));
        }
        *slot = Some(tuple);
        Ok(())
    }

    /// Iterates `(TupleId, &tuple)` over live tuples in id order.
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, &[Value])> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_deref().map(|t| (TupleId(i as u64), t)))
    }

    /// Value of `column` in tuple `id`.
    pub fn value(&self, id: TupleId, column: &str) -> Result<&Value, RelationalError> {
        let idx = self
            .schema
            .index_of(column)
            .ok_or_else(|| RelationalError::NoSuchColumn(column.to_owned()))?;
        Ok(&self.get(id)?[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType};

    fn rel() -> Relation {
        Relation::new(
            "cities",
            Schema::new(vec![
                Column::new("city", ColumnType::Str),
                Column::new("population", ColumnType::Int),
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_get_scan() {
        let mut r = rel();
        let a = r
            .insert(vec!["Boston".into(), 4_900_000i64.into()])
            .unwrap();
        let b = r.insert(vec!["Miami".into(), 6_100_000i64.into()]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).unwrap()[0], Value::str("Boston"));
        assert_eq!(r.value(b, "population").unwrap(), &Value::Int(6_100_000));
        let ids: Vec<TupleId> = r.scan().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn delete_keeps_ids_stable() {
        let mut r = rel();
        let a = r.insert(vec!["A".into(), 1i64.into()]).unwrap();
        let b = r.insert(vec!["B".into(), 2i64.into()]).unwrap();
        r.delete(a).unwrap();
        assert_eq!(r.len(), 1);
        assert!(r.get(a).is_err());
        assert_eq!(r.get(b).unwrap()[0], Value::str("B"));
        // New insert gets a fresh id, not a's.
        let c = r.insert(vec!["C".into(), 3i64.into()]).unwrap();
        assert_ne!(c, a);
    }

    #[test]
    fn double_delete_fails() {
        let mut r = rel();
        let a = r.insert(vec!["A".into(), 1i64.into()]).unwrap();
        r.delete(a).unwrap();
        assert!(matches!(r.delete(a), Err(RelationalError::NoSuchTuple(_))));
    }

    #[test]
    fn update_in_place() {
        let mut r = rel();
        let a = r.insert(vec!["A".into(), 1i64.into()]).unwrap();
        r.update(a, vec!["A".into(), 10i64.into()]).unwrap();
        assert_eq!(r.value(a, "population").unwrap(), &Value::Int(10));
        assert!(r.update(a, vec!["bad".into()]).is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let mut r = rel();
        assert!(r.insert(vec![Value::Int(5), Value::Int(1)]).is_err());
        assert!(r.insert(vec![Value::str("x")]).is_err());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn unknown_column_error() {
        let mut r = rel();
        let a = r.insert(vec!["A".into(), 1i64.into()]).unwrap();
        assert!(matches!(
            r.value(a, "altitude"),
            Err(RelationalError::NoSuchColumn(_))
        ));
    }
}
