//! Alphanumeric relational substrate for the pictorial database.
//!
//! The paper's architecture (Figure 1.1) pairs a conventional
//! "alphanumeric data processor" with the pictorial processor; PSQL
//! "extends the power of SQL for retrieving alphanumeric data" (§2). This
//! crate is that conventional half, built from scratch:
//!
//! * typed [`Value`]s and [`Schema`]s — including the `pointer` type of
//!   the paper's `loc` columns ("an extra column named *loc* of type
//!   pointer which stores pointers to the picture", §2.1);
//! * heap [`Relation`]s of tuples with stable [`TupleId`]s;
//! * a from-scratch [`BPlusTree`] index for alphanumeric columns
//!   ("the relation columns that correspond to alphanumeric domains are
//!   indexed the usual way") — R-trees being their two-dimensional
//!   generalization is the paper's founding analogy;
//! * boolean [`Predicate`]s over tuples (the `where`-clause machinery);
//! * a [`Catalog`] naming relations and their indexes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod btree;
pub mod catalog;
pub mod error;
pub mod heap;
pub mod predicate;
pub mod schema;
pub mod value;

pub use btree::BPlusTree;
pub use catalog::Catalog;
pub use error::RelationalError;
pub use heap::{Relation, TupleId};
pub use predicate::{CompareOp, Predicate};
pub use schema::{Column, ColumnType, Schema};
pub use value::Value;
