//! Error type for the relational layer.

use crate::schema::ColumnType;
use std::fmt;

/// Anything that can go wrong below the query language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// Schema declared two columns with the same name.
    DuplicateColumn(String),
    /// Tuple arity differs from schema arity.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Tuple length.
        got: usize,
    },
    /// Value type differs from column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Declared type.
        expected: ColumnType,
        /// Provided type.
        got: ColumnType,
    },
    /// Unknown column referenced.
    NoSuchColumn(String),
    /// Unknown relation referenced.
    NoSuchRelation(String),
    /// Relation name already taken.
    RelationExists(String),
    /// Tuple id not present (deleted or never allocated).
    NoSuchTuple(u64),
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateColumn(c) => write!(f, "duplicate column {c:?}"),
            RelationalError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, tuple has {got}"
                )
            }
            RelationalError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column {column:?} expects {expected}, got {got}"),
            RelationalError::NoSuchColumn(c) => write!(f, "no such column {c:?}"),
            RelationalError::NoSuchRelation(r) => write!(f, "no such relation {r:?}"),
            RelationalError::RelationExists(r) => write!(f, "relation {r:?} already exists"),
            RelationalError::NoSuchTuple(id) => write!(f, "no such tuple #{id}"),
        }
    }
}

impl std::error::Error for RelationalError {}
