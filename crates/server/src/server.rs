//! The concurrent query service: an event-driven I/O core feeding a
//! fixed worker pool over a bounded queue, with per-request deadlines,
//! backpressure, a cached-plan table, and graceful drain-on-shutdown.
//!
//! ## Threading model
//!
//! * One **reactor thread** (see [`crate::reactor`]) owns the listener
//!   and every connection: nonblocking accept into a slab, incremental
//!   frame reassembly per connection, and all socket writes. Cheap
//!   control requests (`PING`, `STATS`) are answered inline on the
//!   reactor; queries and inserts go to the bounded worker queue; admin
//!   rebuilds (`REPACK`, `PACK EXTERNAL`) go to a dedicated admin
//!   thread so a long rebuild never stalls the queue or the loop. A
//!   full queue is answered immediately with `Overloaded` — the reactor
//!   never blocks on the pool.
//! * `workers` **worker threads** pop queries in batches, pin the
//!   current database snapshot through a per-thread lock-free cache,
//!   execute (reusing cached plans where the epoch still matches), and
//!   park response frames in the connection's outbox for the reactor to
//!   flush.
//! * One **admin thread** serializes snapshot rebuilds; one **merge
//!   thread** folds delta trees in the background.
//!
//! There are *no per-connection threads*: ten thousand idle connections
//! cost ten thousand slab entries, not ten thousand stacks.
//!
//! Responses may interleave across requests of one connection (that is
//! what the request id is for): completion order, not submission order.
//! Each response frame is queued atomically, so frames never interleave
//! mid-frame.

use crate::metrics::Metrics;
use crate::plan_cache::{PlanCache, Prepared};
use crate::protocol::{decode_request, peek_request_id, ErrorKind, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use crate::reactor::{reactor_loop, Notifier, Session};
use crate::snapshot::{SnapshotCache, SnapshotCell};
use psql::ast::Query;
use psql::database::PictorialDatabase;
use psql::functions::FunctionRegistry;
use psql::{InsertRecord, PsqlError, ResultSet};
use rtree_index::{BatchScratch, SearchScratch};
use rtree_storage::{Pager, Wal, WAL_RECORD_MAX};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of query worker threads.
    pub workers: usize,
    /// Bounded request-queue capacity; pushes beyond this are answered
    /// `Overloaded`.
    pub queue_capacity: usize,
    /// Deadline applied to queries that don't carry their own
    /// `timeout_ms`.
    pub default_deadline: Duration,
    /// Back-off hint carried in `Overloaded` responses.
    pub retry_after_ms: u32,
    /// Most queries a worker dequeues in one go. Whatever backlog is
    /// already queued rides along (never waiting for more), and the pack
    /// executes through the batched query path — spatially grouped
    /// traversal over one shared scratch. `1` disables batching.
    pub max_batch: usize,
    /// Write-ahead-log file for dynamic inserts. When set, every insert
    /// is appended + fsynced (group commit per worker batch) *before* it
    /// is acknowledged, and startup replays the log into the delta trees.
    /// `None` keeps inserts memory-only (tests, ephemeral servers).
    pub wal_path: Option<PathBuf>,
    /// Delta-tree population that wakes the background merge: once this
    /// many objects sit in delta trees, a merge thread folds them into
    /// freshly packed + frozen main trees and publishes the result.
    /// `usize::MAX` disables background merging (admin `REPACK` still
    /// folds deltas).
    pub merge_threshold: usize,
    /// How often the background merge thread polls the delta population.
    pub merge_interval: Duration,
    /// Entries in the cached-plan table (query text → parsed AST +
    /// epoch-stamped plan). `0` disables plan caching.
    pub plan_cache_capacity: usize,
    /// Most bytes of unread responses buffered per connection before the
    /// server cuts a non-consuming client loose.
    pub max_conn_backlog_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(5),
            retry_after_ms: 10,
            max_batch: 32,
            wal_path: None,
            merge_threshold: 128,
            merge_interval: Duration::from_millis(20),
            plan_cache_capacity: 256,
            max_conn_backlog_bytes: 64 << 20,
        }
    }
}

/// What a queued job asks the worker pool to do.
pub(crate) enum JobKind {
    /// Parse + execute PSQL text.
    Query(String),
    /// Durably insert one object into a picture.
    Insert(InsertRecord),
}

/// One queued request.
pub(crate) struct Job {
    id: u64,
    kind: JobKind,
    deadline: Instant,
    session: Arc<Session>,
}

/// One queued admin rebuild — served by the dedicated admin thread so a
/// multi-second repack never occupies a query worker or the reactor.
pub(crate) enum AdminJob {
    /// In-memory re-pack of every picture.
    Repack { id: u64, session: Arc<Session> },
    /// Budget-bounded external re-pack of every picture.
    PackExternal {
        id: u64,
        budget_bytes: u64,
        threads: u32,
        session: Arc<Session>,
    },
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) snapshots: Arc<SnapshotCell>,
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) functions: FunctionRegistry,
    pub(crate) queue: BoundedQueue<Job>,
    pub(crate) admin_queue: BoundedQueue<AdminJob>,
    pub(crate) plans: PlanCache,
    pub(crate) notifier: Arc<Notifier>,
    pub(crate) shutting_down: AtomicBool,
    /// Set by the reactor once it has stopped interpreting new requests
    /// (shutdown observed) — the gate [`Server::wait`] needs before it
    /// may close the worker queue.
    pub(crate) reader_stopped: AtomicBool,
    /// Set by [`Server::wait`] after the workers are joined: every
    /// response that will ever exist is in an outbox, so the reactor may
    /// final-flush and exit.
    pub(crate) workers_done: AtomicBool,
    /// Serializes *writers* (insert batches, background merge, admin
    /// repack): each clones the latest snapshot, mutates, and publishes.
    /// Two concurrent clone-mutate-publish cycles would silently drop
    /// whichever published first, so every mutation holds this lock
    /// around its whole read-modify-publish. Readers never touch it.
    /// The WAL lives inside so "durable before published" is one
    /// critical section.
    write_lock: Mutex<Option<Wal<Pager>>>,
}

/// A running query service. Dropping the handle does *not* stop the
/// server; call [`Server::stop`] (or send the protocol `SHUTDOWN`
/// request and then [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    reactor_thread: Option<JoinHandle<()>>,
    admin_thread: Option<JoinHandle<()>>,
    merge_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), serves
    /// `db` as the epoch-1 snapshot, and spawns the reactor plus the
    /// worker pool.
    ///
    /// When [`ServerConfig::wal_path`] is set, the log is opened (or
    /// created) first and every intact record is replayed into `db`'s
    /// delta trees before the snapshot is published — crash recovery for
    /// acknowledged dynamic writes.
    pub fn start(
        mut db: PictorialDatabase,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Server> {
        assert!(config.workers >= 1);
        let metrics = Metrics::default();
        let wal = match &config.wal_path {
            Some(path) => {
                let pager = if path.exists() {
                    Pager::open(path)?
                } else {
                    Pager::create(path)?
                };
                let (wal, records) = Wal::open(pager)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let mut recovered = 0u64;
                for bytes in &records {
                    // The WAL layer only surfaces whole records, so a
                    // decode failure here means corruption beyond a torn
                    // tail — refuse to start on it.
                    let rec = InsertRecord::decode(bytes).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("undecodable WAL record: {e}"),
                        )
                    })?;
                    match db.add_object(&rec.picture, rec.object, &rec.label) {
                        Ok(_) => recovered += 1,
                        Err(e) => {
                            // A record for a picture the base database no
                            // longer has: skip, don't refuse service.
                            eprintln!("[psql-server] WAL replay skipped a record: {e}");
                        }
                    }
                }
                metrics.wal_recovered.store(recovered);
                if recovered > 0 {
                    eprintln!(
                        "[psql-server] WAL recovery replayed {recovered} insert(s) into delta trees"
                    );
                }
                Some(wal)
            }
            None => None,
        };

        let listener = TcpListener::bind(addr)?;
        // std's bind hard-codes a backlog of 128; a connection storm
        // overflows that into SYN retransmit stalls. Deepen it.
        let _ = epoll::listen_backlog(listener.as_raw_fd(), 4096);
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            admin_queue: BoundedQueue::new(4),
            plans: PlanCache::new(config.plan_cache_capacity),
            notifier: Arc::new(Notifier::new()?),
            config,
            addr: local_addr,
            snapshots: Arc::new(SnapshotCell::new(db)),
            metrics: Arc::new(metrics),
            functions: FunctionRegistry::with_builtins(),
            shutting_down: AtomicBool::new(false),
            reader_stopped: AtomicBool::new(false),
            workers_done: AtomicBool::new(false),
            write_lock: Mutex::new(wal),
        });
        // The registry mirrors the published snapshot from the moment of
        // publication (not lazily at STATS time) — WAL-recovered deltas
        // are visible in the gauges immediately.
        refresh_snapshot_gauges(&shared);

        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("psql-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let admin_thread = {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("psql-admin".into())
                    .spawn(move || admin_loop(&shared))?,
            )
        };

        let merge_thread = if shared.config.merge_threshold != usize::MAX {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("psql-merge".into())
                    .spawn(move || merge_loop(&shared))?,
            )
        } else {
            None
        };

        let reactor_shared = Arc::clone(&shared);
        let reactor_thread = std::thread::Builder::new()
            .name("psql-reactor".into())
            .spawn(move || reactor_loop(listener, &reactor_shared))?;

        Ok(Server {
            shared,
            reactor_thread: Some(reactor_thread),
            admin_thread,
            merge_thread,
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The snapshot publication point — the in-process admin interface
    /// (tests and embedders republish through this).
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.shared.snapshots)
    }

    /// The metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Triggers graceful shutdown without waiting: stop accepting, let
    /// queued queries drain. Idempotent.
    pub fn begin_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the server has fully shut down (someone must have
    /// triggered it — [`Server::begin_shutdown`] or a protocol
    /// `SHUTDOWN`), joining every thread and draining in-flight queries.
    pub fn wait(mut self) {
        // The reactor observes the shutdown flag (waker poke or its
        // 100ms tick), stops interpreting new requests, and raises
        // `reader_stopped` — after which no new jobs can be produced.
        while !self.shared.reader_stopped.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.admin_queue.close();
        if let Some(a) = self.admin_thread.take() {
            let _ = a.join();
        }
        // The merge thread notices the flag within one poll interval.
        if let Some(m) = self.merge_thread.take() {
            let _ = m.join();
        }
        // Every response that will ever exist is now queued; let the
        // reactor flush them out and exit.
        self.shared.workers_done.store(true, Ordering::SeqCst);
        self.shared.notifier.wake();
        if let Some(r) = self.reactor_thread.take() {
            let _ = r.join();
        }
    }

    /// [`Server::begin_shutdown`] + [`Server::wait`].
    pub fn stop(self) {
        self.begin_shutdown();
        self.wait();
    }
}

fn begin_shutdown(shared: &Shared) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        // Poke the reactor out of its wait so it observes the flag now.
        shared.notifier.wake();
    }
}

/// Mirrors the published snapshot's write-path view (delta population,
/// frozen-tree invariant) into the metrics registry. Called at every
/// snapshot publication — insert batch, background merge, admin rebuild
/// — so the gauges are always as fresh as the snapshot itself.
fn refresh_snapshot_gauges(shared: &Shared) {
    let snap = shared.snapshots.load();
    shared.metrics.delta_items.store(snap.db.delta_len() as u64);
    shared
        .metrics
        .serves_frozen_queries
        .store(snap.db.frozen_intact() as u64);
}

/// Handles one well-framed payload on the reactor thread. Returns
/// `false` when the connection should flush-and-close (shutdown
/// acknowledged).
pub(crate) fn handle_frame(payload: &[u8], session: &Arc<Session>, shared: &Arc<Shared>) -> bool {
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(message) => {
            // Malformed payload inside a well-delimited frame: typed
            // error, session stays up.
            shared.metrics.protocol_errors.incr();
            session.send(&Response::Error {
                id: peek_request_id(payload),
                kind: ErrorKind::Protocol,
                message,
            });
            return true;
        }
    };
    match request {
        Request::Ping { id } => {
            shared.metrics.control_requests.incr();
            session.send(&Response::Pong { id });
        }
        Request::Stats { id } => {
            shared.metrics.control_requests.incr();
            shared
                .metrics
                .plan_cache_entries
                .store(shared.plans.len() as u64);
            let json = shared.metrics.to_json(
                shared.snapshots.current_epoch(),
                shared.config.queue_capacity,
                shared.config.workers,
            );
            session.send(&Response::Stats { id, json });
        }
        Request::Repack { id } => {
            shared.metrics.control_requests.incr();
            enqueue_admin(
                shared,
                id,
                AdminJob::Repack {
                    id,
                    session: Arc::clone(session),
                },
                session,
            );
        }
        Request::PackExternal {
            id,
            budget_bytes,
            threads,
        } => {
            shared.metrics.control_requests.incr();
            enqueue_admin(
                shared,
                id,
                AdminJob::PackExternal {
                    id,
                    budget_bytes,
                    threads,
                    session: Arc::clone(session),
                },
                session,
            );
        }
        Request::Shutdown { id } => {
            shared.metrics.control_requests.incr();
            session.send(&Response::Done {
                id,
                epoch: shared.snapshots.current_epoch(),
            });
            begin_shutdown(shared);
            return false;
        }
        Request::Query {
            id,
            timeout_ms,
            text,
        } => {
            shared.metrics.queries.incr();
            let budget = if timeout_ms == 0 {
                shared.config.default_deadline
            } else {
                Duration::from_millis(timeout_ms as u64)
            };
            enqueue(shared, id, JobKind::Query(text), budget, session);
        }
        Request::Insert {
            id,
            picture,
            label,
            object,
        } => {
            // Ingest rides the same worker pool and bounded queue as
            // queries: full queue → Overloaded, never an unbounded
            // buffer of pending writes.
            let record = InsertRecord {
                picture,
                label,
                object,
            };
            enqueue(
                shared,
                id,
                JobKind::Insert(record),
                shared.config.default_deadline,
                session,
            );
        }
    }
    true
}

/// Pushes one job onto the bounded queue, answering `Overloaded` /
/// shutdown errors inline.
fn enqueue(shared: &Arc<Shared>, id: u64, kind: JobKind, budget: Duration, session: &Arc<Session>) {
    let job = Job {
        id,
        kind,
        deadline: Instant::now() + budget,
        session: Arc::clone(session),
    };
    match shared.queue.try_push(job) {
        Ok(()) => shared.metrics.queue_depth.inc(),
        Err(PushError::Full(job)) => {
            shared.metrics.overloads.incr();
            job.session.send(&Response::Overloaded {
                id,
                retry_after_ms: shared.config.retry_after_ms,
            });
        }
        Err(PushError::Closed(job)) => {
            job.session.send(&Response::Error {
                id,
                kind: ErrorKind::Internal,
                message: "server is shutting down".into(),
            });
        }
    }
}

/// Pushes one admin rebuild onto the (small) admin queue.
fn enqueue_admin(shared: &Arc<Shared>, id: u64, job: AdminJob, session: &Arc<Session>) {
    match shared.admin_queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.metrics.overloads.incr();
            session.send(&Response::Overloaded {
                id,
                retry_after_ms: shared.config.retry_after_ms,
            });
        }
        Err(PushError::Closed(_)) => {
            session.send(&Response::Error {
                id,
                kind: ErrorKind::Internal,
                message: "server is shutting down".into(),
            });
        }
    }
}

/// The dedicated admin thread: serializes snapshot rebuilds off the
/// reactor and off the query workers, so a multi-second `REPACK` stalls
/// neither the event loop nor query execution. Both rebuilds drop every
/// cached plan — the physical trees the plans were compiled against are
/// being replaced wholesale.
fn admin_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.admin_queue.pop() {
        match job {
            AdminJob::Repack { id, session } => {
                // Clone + re-pack outside the snapshot lock, publish
                // atomically. Holds the writer lock so a concurrent
                // insert batch or background merge can't publish a
                // snapshot this clone never saw.
                let started = Instant::now();
                let guard = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
                let epoch = shared.snapshots.update(|db| db.pack_all());
                drop(guard);
                shared.plans.invalidate_plans();
                shared.metrics.plan_cache_invalidations.incr();
                refresh_snapshot_gauges(shared);
                shared.metrics.snapshots_published.incr();
                shared.metrics.admin_latency.record(started.elapsed());
                session.send(&Response::Done { id, epoch });
            }
            AdminJob::PackExternal {
                id,
                budget_bytes,
                threads,
                session,
            } => {
                // Same admin discipline, but the rebuild runs the
                // out-of-core external packer under a memory budget. The
                // clone is published only if every picture repacks
                // cleanly — a spill-file I/O error must not publish a
                // half-packed db.
                let started = Instant::now();
                let guard = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
                let base = shared.snapshots.load();
                let mut db = base.db.clone();
                drop(base);
                match db.pack_external_all(budget_bytes, threads as usize) {
                    Ok(_stats) => {
                        let epoch = shared.snapshots.publish(db);
                        drop(guard);
                        shared.plans.invalidate_plans();
                        shared.metrics.plan_cache_invalidations.incr();
                        refresh_snapshot_gauges(shared);
                        shared.metrics.snapshots_published.incr();
                        shared.metrics.admin_latency.record(started.elapsed());
                        session.send(&Response::Done { id, epoch });
                    }
                    Err(e) => {
                        drop(guard);
                        shared.metrics.admin_latency.record(started.elapsed());
                        session.send(&Response::Error {
                            id,
                            kind: ErrorKind::from(&e),
                            message: e.to_string(),
                        });
                    }
                }
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut batch = BatchScratch::new();
    let mut cache = SnapshotCache::new();
    let mut jobs: Vec<Job> = Vec::new();
    loop {
        jobs.clear();
        let n = shared
            .queue
            .pop_batch(&mut jobs, shared.config.max_batch.max(1));
        if n == 0 {
            break;
        }
        shared.metrics.queue_depth.sub(n as i64);
        let mut snapshot = shared.snapshots.load_cached(&mut cache);

        // Ingest first: all inserts in the dequeued pack WAL-commit as a
        // group (one fsync) and publish as one snapshot, which the
        // pack's queries then read — writes ordered before reads that
        // were queued behind them.
        if jobs.iter().any(|j| matches!(j.kind, JobKind::Insert(_))) {
            ingest_batch(shared, &snapshot, &jobs);
            snapshot = shared.snapshots.load_cached(&mut cache);
        }

        let query_count = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Query(_)))
            .count();
        if query_count == 0 {
            continue;
        }
        if query_count == 1 {
            if let Some(job) = jobs.iter().find(|j| matches!(j.kind, JobKind::Query(_))) {
                run_job(shared, &snapshot, job, batch.search());
            }
            continue;
        }

        // A dequeued pack: answer already-expired jobs, run diagnostics
        // directives one at a time (a `#sleep` must not stall the rest
        // of the pack's responses), parse the remainder (through the
        // parse half of the plan cache), and execute the parsed queries
        // as one spatially-grouped batch. One expired (or malformed, or
        // panicking) job never poisons its pack-mates: each is answered
        // individually and the rest still execute.
        let mut pack: Vec<(usize, Query)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let JobKind::Query(text) = &job.kind else {
                continue; // inserts already acknowledged above
            };
            if Instant::now() > job.deadline {
                shared.metrics.timeouts.incr();
                job.session.send(&Response::Timeout { id: job.id });
            } else if text.trim_start().starts_with('#') {
                run_job(shared, &snapshot, job, batch.search());
            } else {
                match catch_unwind(AssertUnwindSafe(|| parse_cached(shared, text))) {
                    Ok(Ok(query)) => pack.push((i, query)),
                    Ok(Err(e)) => {
                        shared.metrics.query_errors.incr();
                        job.session.send(&Response::Error {
                            id: job.id,
                            kind: ErrorKind::from(&e),
                            message: e.to_string(),
                        });
                    }
                    Err(_) => {
                        shared.metrics.internal_errors.incr();
                        job.session.send(&Response::Error {
                            id: job.id,
                            kind: ErrorKind::Internal,
                            message: "query execution panicked (contained; session unaffected)"
                                .into(),
                        });
                    }
                }
            }
        }
        if pack.is_empty() {
            continue;
        }
        let (idxs, queries): (Vec<usize>, Vec<Query>) = pack.into_iter().unzip();
        if queries.len() >= 2 {
            shared.metrics.query_batches.incr();
            shared.metrics.batched_queries.add(queries.len() as u64);
        }
        let started = Instant::now();
        let results = catch_unwind(AssertUnwindSafe(|| {
            psql::exec::execute_batch_with_scratch(
                &snapshot.db,
                &queries,
                &shared.functions,
                &mut batch,
            )
        }));
        match results {
            Ok(results) => {
                // The pack ran as one grouped traversal; its wall time
                // split evenly is the honest per-query cost.
                let share = started.elapsed() / queries.len() as u32;
                for (&i, result) in idxs.iter().zip(results) {
                    shared.metrics.query_latency.record(share);
                    let job = &jobs[i];
                    if Instant::now() > job.deadline {
                        shared.metrics.timeouts.incr();
                        job.session.send(&Response::Timeout { id: job.id });
                        continue;
                    }
                    match result {
                        Ok(result) => {
                            shared.metrics.ok.incr();
                            job.session.send(&Response::Result {
                                id: job.id,
                                epoch: snapshot.epoch,
                                result,
                            });
                        }
                        Err(e) => {
                            shared.metrics.query_errors.incr();
                            job.session.send(&Response::Error {
                                id: job.id,
                                kind: ErrorKind::from(&e),
                                message: e.to_string(),
                            });
                        }
                    }
                }
            }
            Err(_) => {
                // A panic mid-batch is contained by retrying each job
                // alone, so only the offending query answers the typed
                // internal error and innocent pack-mates still succeed.
                for &i in &idxs {
                    run_job(shared, &snapshot, &jobs[i], batch.search());
                }
            }
        }
    }
}

/// Parse-cache front for the batched path: returns an owned [`Query`]
/// (cloned out of the cached `Arc` — the batch executor wants a slice of
/// owned queries), parsing and populating the cache on a miss. The batch
/// executor re-plans internally, so only the parse stage is reused here;
/// single-query execution reuses full plans.
fn parse_cached(shared: &Shared, text: &str) -> Result<Query, PsqlError> {
    let epoch = shared.snapshots.current_epoch();
    match shared.plans.prepare(text, epoch) {
        Prepared::Plan(query, _) | Prepared::Query(query) => {
            shared.metrics.plan_cache_parse_hits.incr();
            Ok((*query).clone())
        }
        Prepared::Miss => {
            shared.metrics.plan_cache_misses.incr();
            let query = Arc::new(psql::parse_query(text)?);
            if shared.plans.store(text, Arc::clone(&query), None) {
                shared.metrics.plan_cache_evictions.incr();
            }
            Ok((*query).clone())
        }
    }
}

/// Applies every insert in a dequeued pack as one group commit: validate
/// against the pinned snapshot, append all records to the WAL under one
/// fsync, publish one snapshot holding all of them, then acknowledge.
/// Nothing is acknowledged before it is durable (when a WAL is
/// configured) *and* published.
fn ingest_batch(shared: &Arc<Shared>, snapshot: &crate::snapshot::DatabaseSnapshot, jobs: &[Job]) {
    let mut accepted: Vec<(&Job, &InsertRecord, Vec<u8>)> = Vec::new();
    for job in jobs {
        let JobKind::Insert(rec) = &job.kind else {
            continue;
        };
        if Instant::now() > job.deadline {
            shared.metrics.timeouts.incr();
            job.session.send(&Response::Timeout { id: job.id });
            continue;
        }
        if let Err(e) = snapshot.db.picture(&rec.picture) {
            shared.metrics.query_errors.incr();
            job.session.send(&Response::Error {
                id: job.id,
                kind: ErrorKind::from(&e),
                message: e.to_string(),
            });
            continue;
        }
        match rec.encode() {
            Ok(bytes) if bytes.len() <= WAL_RECORD_MAX => accepted.push((job, rec, bytes)),
            Ok(bytes) => {
                shared.metrics.query_errors.incr();
                job.session.send(&Response::Error {
                    id: job.id,
                    kind: ErrorKind::Semantic,
                    message: format!(
                        "insert of {} bytes exceeds the WAL record limit {WAL_RECORD_MAX}",
                        bytes.len()
                    ),
                });
            }
            Err(e) => {
                shared.metrics.query_errors.incr();
                job.session.send(&Response::Error {
                    id: job.id,
                    kind: ErrorKind::from(&e),
                    message: e.to_string(),
                });
            }
        }
    }
    if accepted.is_empty() {
        return;
    }

    // The writer lock spans WAL commit *and* snapshot publication, so
    // the durable order and the published order can never diverge, and
    // no concurrent writer can publish a snapshot missing these records.
    let mut writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(wal) = writer.as_mut() {
        let mut bytes_appended = 0u64;
        let committed = (|| {
            for (_, _, bytes) in &accepted {
                wal.append(bytes)?;
                bytes_appended += bytes.len() as u64;
            }
            wal.sync()
        })();
        match committed {
            Ok(()) => {
                shared.metrics.wal_appends.add(accepted.len() as u64);
                shared.metrics.wal_bytes.add(bytes_appended);
                shared.metrics.wal_syncs.incr();
            }
            Err(e) => {
                // Durability failed: acknowledge nothing, apply nothing.
                // (The WAL rolls back its in-memory framing on a failed
                // append, so the next batch starts from a clean tail.)
                drop(writer);
                shared.metrics.internal_errors.add(accepted.len() as u64);
                for (job, _, _) in &accepted {
                    job.session.send(&Response::Error {
                        id: job.id,
                        kind: ErrorKind::Internal,
                        message: format!("write-ahead log failure: {e}"),
                    });
                }
                return;
            }
        }
    }
    let epoch = shared.snapshots.update(|db| {
        for (_, rec, _) in &accepted {
            let opens_delta = db
                .picture(&rec.picture)
                .map(|p| p.frozen().is_some() && p.delta_len() == 0)
                .unwrap_or(false);
            match db.add_object(&rec.picture, rec.object.clone(), &rec.label) {
                Ok(_) => {
                    if opens_delta {
                        eprintln!(
                            "[psql-server] picture {:?}: first dynamic write since pack — \
                             frozen tree retained, insert buffered in delta (merge pending)",
                            rec.picture
                        );
                    }
                }
                Err(e) => {
                    // Validated above against the same lineage; a failure
                    // here would be a picture vanishing mid-flight.
                    eprintln!("[psql-server] insert apply failed after WAL commit: {e}");
                }
            }
        }
    });
    drop(writer);
    refresh_snapshot_gauges(shared);
    shared.metrics.snapshots_published.incr();
    shared.metrics.inserts.add(accepted.len() as u64);
    for (job, _, _) in &accepted {
        shared.metrics.ok.incr();
        job.session.send(&Response::Done { id: job.id, epoch });
    }
}

/// The background merge thread: once the delta population crosses the
/// configured threshold, fold every delta into a freshly packed + frozen
/// main tree on a snapshot clone and publish the result. Queries keep
/// serving the old snapshot throughout; the swap is the usual atomic
/// epoch bump.
fn merge_loop(shared: &Arc<Shared>) {
    loop {
        std::thread::sleep(shared.config.merge_interval);
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        if shared.snapshots.load().db.delta_len() < shared.config.merge_threshold {
            continue;
        }
        let started = Instant::now();
        let guard = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut folded = 0;
        let epoch = shared.snapshots.update(|db| folded = db.merge_deltas());
        drop(guard);
        refresh_snapshot_gauges(shared);
        shared.metrics.merges.incr();
        shared.metrics.snapshots_published.incr();
        shared.metrics.admin_latency.record(started.elapsed());
        eprintln!(
            "[psql-server] background merge folded {folded} delta tree(s) into packed + \
             frozen main trees (epoch {epoch}, {:?})",
            started.elapsed()
        );
    }
}

/// Executes one job exactly as the pre-batching worker did: deadline
/// check, prepare (through the plan cache) + execute under
/// `catch_unwind`, deadline re-check, respond.
fn run_job(
    shared: &Shared,
    snapshot: &crate::snapshot::DatabaseSnapshot,
    job: &Job,
    scratch: &mut SearchScratch,
) {
    let JobKind::Query(text) = &job.kind else {
        return; // inserts flow through ingest_batch, never here
    };
    if Instant::now() > job.deadline {
        // Expired while queued: answer without executing.
        shared.metrics.timeouts.incr();
        job.session.send(&Response::Timeout { id: job.id });
        return;
    }
    let started = Instant::now();
    let outcome = run_query(
        &snapshot.db,
        snapshot.epoch,
        text,
        &shared.functions,
        scratch,
        &shared.plans,
        &shared.metrics,
    );
    shared.metrics.query_latency.record(started.elapsed());
    if Instant::now() > job.deadline {
        // Finished, but past the promise: the client already moved
        // on, so report the timeout it observed.
        shared.metrics.timeouts.incr();
        job.session.send(&Response::Timeout { id: job.id });
        return;
    }
    match outcome {
        Ok(result) => {
            shared.metrics.ok.incr();
            job.session.send(&Response::Result {
                id: job.id,
                epoch: snapshot.epoch,
                result,
            });
        }
        Err(QueryFailure::Psql(e)) => {
            shared.metrics.query_errors.incr();
            job.session.send(&Response::Error {
                id: job.id,
                kind: ErrorKind::from(&e),
                message: e.to_string(),
            });
        }
        Err(QueryFailure::Panicked) => {
            shared.metrics.internal_errors.incr();
            job.session.send(&Response::Error {
                id: job.id,
                kind: ErrorKind::Internal,
                message: "query execution panicked (contained; session unaffected)".into(),
            });
        }
    }
}

enum QueryFailure {
    Psql(PsqlError),
    Panicked,
}

/// Parses, plans, and executes one query against a pinned snapshot,
/// going through the cached-plan table: a full hit (plan stamped with
/// this snapshot's epoch) skips parse *and* plan; a parse hit skips the
/// parse and restamps a fresh plan; a miss prepares from scratch and
/// populates the cache. Parse/plan failures are never cached.
///
/// Supports one diagnostics directive: a query text of
/// `#sleep <millis>` (optionally followed by a query) sleeps before
/// executing — the deterministic way to exercise deadline enforcement
/// from tests and the CI smoke script.
#[allow(clippy::too_many_arguments)]
fn run_query(
    db: &PictorialDatabase,
    epoch: u64,
    text: &str,
    functions: &FunctionRegistry,
    scratch: &mut SearchScratch,
    plans: &PlanCache,
    metrics: &Metrics,
) -> Result<ResultSet, QueryFailure> {
    let mut text = text.trim();
    if let Some(rest) = text.strip_prefix("#sleep") {
        let rest = rest.trim_start();
        let (ms_str, remainder) = match rest.split_once(char::is_whitespace) {
            Some((ms, r)) => (ms, r.trim()),
            None => (rest, ""),
        };
        let ms: u64 = ms_str.parse().map_err(|_| {
            QueryFailure::Psql(PsqlError::Parse(format!(
                "#sleep wants milliseconds, got {ms_str:?}"
            )))
        })?;
        // Cap so a hostile client cannot park a worker for minutes.
        std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        if remainder.is_empty() {
            return Ok(ResultSet::default());
        }
        text = remainder;
    }
    let prepared = plans.prepare(text, epoch);
    match &prepared {
        Prepared::Plan(..) => metrics.plan_cache_hits.incr(),
        Prepared::Query(_) => metrics.plan_cache_parse_hits.incr(),
        Prepared::Miss => metrics.plan_cache_misses.incr(),
    }
    let text = text.to_owned();
    // Workers must survive any executor bug: contain panics and answer a
    // typed internal error instead. The snapshot is immutable, so no
    // broken invariants can leak out of an unwound execution.
    let result = catch_unwind(AssertUnwindSafe(|| match prepared {
        Prepared::Plan(_, plan) => {
            psql::exec::execute_plan_with_scratch(db, &plan, functions, scratch)
        }
        Prepared::Query(query) => {
            let plan = Arc::new(psql::plan::plan(db, &query)?);
            let rs = psql::exec::execute_plan_with_scratch(db, &plan, functions, scratch)?;
            if plans.store(&text, query, Some((epoch, plan))) {
                metrics.plan_cache_evictions.incr();
            }
            Ok(rs)
        }
        Prepared::Miss => {
            let query = Arc::new(psql::parse_query(&text)?);
            let plan = Arc::new(psql::plan::plan(db, &query)?);
            let rs = psql::exec::execute_plan_with_scratch(db, &plan, functions, scratch)?;
            if plans.store(&text, query, Some((epoch, plan))) {
                metrics.plan_cache_evictions.incr();
            }
            Ok(rs)
        }
    }));
    match result {
        Ok(Ok(rs)) => Ok(rs),
        Ok(Err(e)) => Err(QueryFailure::Psql(e)),
        Err(_) => Err(QueryFailure::Panicked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_directive_parses() {
        let db = PictorialDatabase::with_us_map();
        let functions = FunctionRegistry::with_builtins();
        let mut scratch = SearchScratch::new();
        let plans = PlanCache::new(16);
        let metrics = Metrics::default();
        let t0 = Instant::now();
        let r = run_query(
            &db,
            1,
            "#sleep 30",
            &functions,
            &mut scratch,
            &plans,
            &metrics,
        );
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert!(r.is_ok_and(|rs| rs.is_empty()));
        // Directive followed by a real query.
        let r = run_query(
            &db,
            1,
            "#sleep 1 select zone from time-zones",
            &functions,
            &mut scratch,
            &plans,
            &metrics,
        )
        .ok()
        .unwrap();
        assert_eq!(r.len(), 4);
        // The directive's trailing query went through the plan cache.
        assert_eq!(metrics.plan_cache_misses.get(), 1);
        // Bad millis is a parse error, not a hang.
        assert!(matches!(
            run_query(
                &db,
                1,
                "#sleep lots",
                &functions,
                &mut scratch,
                &plans,
                &metrics
            ),
            Err(QueryFailure::Psql(PsqlError::Parse(_)))
        ));
    }

    #[test]
    fn repeated_query_hits_the_plan_cache() {
        let db = PictorialDatabase::with_us_map();
        let functions = FunctionRegistry::with_builtins();
        let mut scratch = SearchScratch::new();
        let plans = PlanCache::new(16);
        let metrics = Metrics::default();
        let text = "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}";
        let first = run_query(&db, 1, text, &functions, &mut scratch, &plans, &metrics)
            .ok()
            .unwrap();
        let second = run_query(&db, 1, text, &functions, &mut scratch, &plans, &metrics)
            .ok()
            .unwrap();
        assert_eq!(first, second);
        assert_eq!(metrics.plan_cache_misses.get(), 1);
        assert_eq!(metrics.plan_cache_hits.get(), 1);
        // A new epoch demotes to a parse hit, then re-stamps.
        let third = run_query(&db, 2, text, &functions, &mut scratch, &plans, &metrics)
            .ok()
            .unwrap();
        assert_eq!(first, third);
        assert_eq!(metrics.plan_cache_parse_hits.get(), 1);
        let fourth = run_query(&db, 2, text, &functions, &mut scratch, &plans, &metrics)
            .ok()
            .unwrap();
        assert_eq!(first, fourth);
        assert_eq!(metrics.plan_cache_hits.get(), 2);
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let db = PictorialDatabase::with_us_map();
        let functions = FunctionRegistry::with_builtins();
        let mut scratch = SearchScratch::new();
        let plans = PlanCache::new(16);
        let metrics = Metrics::default();
        for _ in 0..3 {
            assert!(matches!(
                run_query(
                    &db,
                    1,
                    "selectt nonsense",
                    &functions,
                    &mut scratch,
                    &plans,
                    &metrics
                ),
                Err(QueryFailure::Psql(_))
            ));
        }
        assert!(plans.is_empty());
        assert_eq!(metrics.plan_cache_misses.get(), 3);
    }
}
