//! The concurrent query service: TCP accept loop, per-session framing,
//! a fixed worker pool over a bounded queue, per-request deadlines,
//! backpressure, and graceful drain-on-shutdown.
//!
//! ## Threading model
//!
//! * One **accept thread** owns the listener and spawns a session thread
//!   per connection.
//! * Each **session thread** reads frames, answers cheap control
//!   requests (`PING`, `STATS`) inline, and enqueues queries on the
//!   bounded queue. A full queue is answered immediately with
//!   `Overloaded` — the session thread never blocks on the pool.
//! * `workers` **worker threads** pop queries, pin the current database
//!   snapshot through a per-thread lock-free cache, execute, and write
//!   the response back through the session's write lock.
//!
//! Responses may interleave across requests of one session (that is what
//! the request id is for), but each response frame is written atomically
//! under the session's write mutex.

use crate::metrics::Metrics;
use crate::protocol::{
    decode_request, encode_response, peek_request_id, read_frame, write_frame, ErrorKind,
    FrameRead, Request, Response,
};
use crate::queue::{BoundedQueue, PushError};
use crate::snapshot::{SnapshotCache, SnapshotCell};
use psql::ast::Query;
use psql::database::PictorialDatabase;
use psql::functions::FunctionRegistry;
use psql::{InsertRecord, PsqlError, ResultSet};
use rtree_index::{BatchScratch, SearchScratch};
use rtree_storage::{Pager, Wal, WAL_RECORD_MAX};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of query worker threads.
    pub workers: usize,
    /// Bounded request-queue capacity; pushes beyond this are answered
    /// `Overloaded`.
    pub queue_capacity: usize,
    /// Deadline applied to queries that don't carry their own
    /// `timeout_ms`.
    pub default_deadline: Duration,
    /// Back-off hint carried in `Overloaded` responses.
    pub retry_after_ms: u32,
    /// Most queries a worker dequeues in one go. Whatever backlog is
    /// already queued rides along (never waiting for more), and the pack
    /// executes through the batched query path — spatially grouped
    /// traversal over one shared scratch. `1` disables batching.
    pub max_batch: usize,
    /// Write-ahead-log file for dynamic inserts. When set, every insert
    /// is appended + fsynced (group commit per worker batch) *before* it
    /// is acknowledged, and startup replays the log into the delta trees.
    /// `None` keeps inserts memory-only (tests, ephemeral servers).
    pub wal_path: Option<PathBuf>,
    /// Delta-tree population that wakes the background merge: once this
    /// many objects sit in delta trees, a merge thread folds them into
    /// freshly packed + frozen main trees and publishes the result.
    /// `usize::MAX` disables background merging (admin `REPACK` still
    /// folds deltas).
    pub merge_threshold: usize,
    /// How often the background merge thread polls the delta population.
    pub merge_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            default_deadline: Duration::from_secs(5),
            retry_after_ms: 10,
            max_batch: 32,
            wal_path: None,
            merge_threshold: 128,
            merge_interval: Duration::from_millis(20),
        }
    }
}

/// What a queued job asks the worker pool to do.
enum JobKind {
    /// Parse + execute PSQL text.
    Query(String),
    /// Durably insert one object into a picture.
    Insert(InsertRecord),
}

/// One queued request.
struct Job {
    id: u64,
    kind: JobKind,
    deadline: Instant,
    session: Arc<Session>,
}

/// The per-connection shared state: the write half of the stream.
struct Session {
    writer: Mutex<TcpStream>,
}

impl Session {
    /// Writes one response frame atomically. Errors are swallowed: a
    /// session whose client vanished mid-response is simply done.
    fn send(&self, resp: &Response) {
        let payload = encode_response(resp);
        let mut stream = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = write_frame(&mut *stream, &payload);
    }
}

struct Shared {
    config: ServerConfig,
    addr: SocketAddr,
    snapshots: Arc<SnapshotCell>,
    metrics: Arc<Metrics>,
    functions: FunctionRegistry,
    queue: BoundedQueue<Job>,
    shutting_down: AtomicBool,
    session_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes *writers* (insert batches, background merge, admin
    /// repack): each clones the latest snapshot, mutates, and publishes.
    /// Two concurrent clone-mutate-publish cycles would silently drop
    /// whichever published first, so every mutation holds this lock
    /// around its whole read-modify-publish. Readers never touch it.
    /// The WAL lives inside so "durable before published" is one
    /// critical section.
    write_lock: Mutex<Option<Wal<Pager>>>,
}

/// A running query service. Dropping the handle does *not* stop the
/// server; call [`Server::stop`] (or send the protocol `SHUTDOWN`
/// request and then [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    merge_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), serves
    /// `db` as the epoch-1 snapshot, and spawns the accept loop plus the
    /// worker pool.
    ///
    /// When [`ServerConfig::wal_path`] is set, the log is opened (or
    /// created) first and every intact record is replayed into `db`'s
    /// delta trees before the snapshot is published — crash recovery for
    /// acknowledged dynamic writes.
    pub fn start(
        mut db: PictorialDatabase,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Server> {
        assert!(config.workers >= 1);
        let metrics = Metrics::default();
        let wal = match &config.wal_path {
            Some(path) => {
                let pager = if path.exists() {
                    Pager::open(path)?
                } else {
                    Pager::create(path)?
                };
                let (wal, records) = Wal::open(pager)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
                let mut recovered = 0u64;
                for bytes in &records {
                    // The WAL layer only surfaces whole records, so a
                    // decode failure here means corruption beyond a torn
                    // tail — refuse to start on it.
                    let rec = InsertRecord::decode(bytes).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("undecodable WAL record: {e}"),
                        )
                    })?;
                    match db.add_object(&rec.picture, rec.object, &rec.label) {
                        Ok(_) => recovered += 1,
                        Err(e) => {
                            // A record for a picture the base database no
                            // longer has: skip, don't refuse service.
                            eprintln!("[psql-server] WAL replay skipped a record: {e}");
                        }
                    }
                }
                metrics.wal_recovered.store(recovered);
                if recovered > 0 {
                    eprintln!(
                        "[psql-server] WAL recovery replayed {recovered} insert(s) into delta trees"
                    );
                }
                Some(wal)
            }
            None => None,
        };

        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            config,
            addr: local_addr,
            snapshots: Arc::new(SnapshotCell::new(db)),
            metrics: Arc::new(metrics),
            functions: FunctionRegistry::with_builtins(),
            shutting_down: AtomicBool::new(false),
            session_threads: Mutex::new(Vec::new()),
            write_lock: Mutex::new(wal),
        });

        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("psql-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let merge_thread = if shared.config.merge_threshold != usize::MAX {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("psql-merge".into())
                    .spawn(move || merge_loop(&shared))?,
            )
        } else {
            None
        };

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("psql-accept".into())
            .spawn(move || accept_loop(listener, &accept_shared))?;

        Ok(Server {
            shared,
            accept_thread: Some(accept_thread),
            merge_thread,
            workers,
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The snapshot publication point — the in-process admin interface
    /// (tests and embedders republish through this).
    pub fn snapshots(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.shared.snapshots)
    }

    /// The metrics registry.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Triggers graceful shutdown without waiting: stop accepting, let
    /// sessions and queued queries drain. Idempotent.
    pub fn begin_shutdown(&self) {
        begin_shutdown(&self.shared);
    }

    /// Blocks until the server has fully shut down (someone must have
    /// triggered it — [`Server::begin_shutdown`] or a protocol
    /// `SHUTDOWN`), joining every thread and draining in-flight queries.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // No new sessions can appear now; join the existing ones (they
        // observe the flag within one read-timeout tick).
        let sessions = std::mem::take(
            &mut *self
                .shared
                .session_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for s in sessions {
            let _ = s.join();
        }
        // Sessions were the only producers; close the queue and let the
        // workers drain what is already enqueued.
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // The merge thread notices the flag within one poll interval.
        if let Some(m) = self.merge_thread.take() {
            let _ = m.join();
        }
    }

    /// [`Server::begin_shutdown`] + [`Server::wait`].
    pub fn stop(self) {
        self.begin_shutdown();
        self.wait();
    }
}

fn begin_shutdown(shared: &Shared) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        // Poke the accept loop out of its blocking accept().
        let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(250));
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connections_opened.incr();
        let shared2 = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("psql-session".into())
            .spawn(move || {
                session_loop(stream, &shared2);
                shared2.metrics.connections_closed.incr();
            });
        if let Ok(handle) = handle {
            shared
                .session_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle);
        }
    }
}

fn session_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // A short read timeout turns the blocking read into a poll loop so
    // the session notices shutdown within ~100ms even when idle.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let session = Arc::new(Session {
        writer: Mutex::new(write_half),
    });
    let mut read_half = stream;
    let stop = {
        let shared = Arc::clone(shared);
        move || shared.shutting_down.load(Ordering::SeqCst)
    };
    loop {
        match read_frame(&mut read_half, &stop) {
            FrameRead::Frame(payload) => {
                if !handle_frame(&payload, &session, shared) {
                    break;
                }
            }
            FrameRead::Eof | FrameRead::Stopped | FrameRead::Io(_) => break,
            FrameRead::Truncated => {
                // EOF mid-frame: nothing sensible to answer to.
                shared.metrics.protocol_errors.incr();
                break;
            }
            FrameRead::TooLarge(n) => {
                // The stream cannot be re-framed after a garbage header;
                // answer (the frame boundary going *out* is still fine)
                // and close this session only.
                shared.metrics.protocol_errors.incr();
                session.send(&Response::Error {
                    id: 0,
                    kind: ErrorKind::Protocol,
                    message: format!(
                        "frame of {n} bytes exceeds limit {}; closing connection",
                        crate::protocol::MAX_FRAME_LEN
                    ),
                });
                break;
            }
        }
    }
}

/// Handles one well-framed payload. Returns `false` when the session
/// should end (shutdown requested).
fn handle_frame(payload: &[u8], session: &Arc<Session>, shared: &Arc<Shared>) -> bool {
    let request = match decode_request(payload) {
        Ok(r) => r,
        Err(message) => {
            // Malformed payload inside a well-delimited frame: typed
            // error, session stays up.
            shared.metrics.protocol_errors.incr();
            session.send(&Response::Error {
                id: peek_request_id(payload),
                kind: ErrorKind::Protocol,
                message,
            });
            return true;
        }
    };
    match request {
        Request::Ping { id } => {
            shared.metrics.control_requests.incr();
            session.send(&Response::Pong { id });
        }
        Request::Stats { id } => {
            shared.metrics.control_requests.incr();
            // Mirror the write-path view of the published snapshot into
            // the registry so STATS reports the delta population and the
            // frozen-tree invariant alongside the counters.
            let snap = shared.snapshots.load();
            shared.metrics.delta_items.store(snap.db.delta_len() as u64);
            shared
                .metrics
                .serves_frozen_queries
                .store(snap.db.frozen_intact() as u64);
            drop(snap);
            let json = shared.metrics.to_json(
                shared.snapshots.current_epoch(),
                shared.config.queue_capacity,
                shared.config.workers,
            );
            session.send(&Response::Stats { id, json });
        }
        Request::Repack { id } => {
            // Admin path: clone + re-pack outside the snapshot lock,
            // publish atomically. Runs on the session thread so the
            // worker pool stays dedicated to queries. Holds the writer
            // lock so a concurrent insert batch or background merge
            // can't publish a snapshot this clone never saw.
            shared.metrics.control_requests.incr();
            let started = Instant::now();
            let guard = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
            let epoch = shared.snapshots.update(|db| db.pack_all());
            drop(guard);
            shared.metrics.snapshots_published.incr();
            shared.metrics.admin_latency.record(started.elapsed());
            session.send(&Response::Done { id, epoch });
        }
        Request::PackExternal { id, budget_bytes } => {
            // Same admin discipline as Repack, but the rebuild runs the
            // out-of-core external packer under a memory budget. The
            // clone is published only if every picture repacks cleanly —
            // a spill-file I/O error must not publish a half-packed db.
            shared.metrics.control_requests.incr();
            let started = Instant::now();
            let guard = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
            let base = shared.snapshots.load();
            let mut db = base.db.clone();
            drop(base);
            match db.pack_external_all(budget_bytes) {
                Ok(_stats) => {
                    let epoch = shared.snapshots.publish(db);
                    drop(guard);
                    shared.metrics.snapshots_published.incr();
                    shared.metrics.admin_latency.record(started.elapsed());
                    session.send(&Response::Done { id, epoch });
                }
                Err(e) => {
                    drop(guard);
                    shared.metrics.admin_latency.record(started.elapsed());
                    session.send(&Response::Error {
                        id,
                        kind: ErrorKind::from(&e),
                        message: e.to_string(),
                    });
                }
            }
        }
        Request::Shutdown { id } => {
            shared.metrics.control_requests.incr();
            session.send(&Response::Done {
                id,
                epoch: shared.snapshots.current_epoch(),
            });
            begin_shutdown(shared);
            return false;
        }
        Request::Query {
            id,
            timeout_ms,
            text,
        } => {
            shared.metrics.queries.incr();
            let budget = if timeout_ms == 0 {
                shared.config.default_deadline
            } else {
                Duration::from_millis(timeout_ms as u64)
            };
            enqueue(shared, id, JobKind::Query(text), budget, session);
        }
        Request::Insert {
            id,
            picture,
            label,
            object,
        } => {
            // Ingest rides the same worker pool and bounded queue as
            // queries: full queue → Overloaded, never an unbounded
            // buffer of pending writes.
            let record = InsertRecord {
                picture,
                label,
                object,
            };
            enqueue(
                shared,
                id,
                JobKind::Insert(record),
                shared.config.default_deadline,
                session,
            );
        }
    }
    true
}

/// Pushes one job onto the bounded queue, answering `Overloaded` /
/// shutdown errors inline.
fn enqueue(shared: &Arc<Shared>, id: u64, kind: JobKind, budget: Duration, session: &Arc<Session>) {
    let job = Job {
        id,
        kind,
        deadline: Instant::now() + budget,
        session: Arc::clone(session),
    };
    match shared.queue.try_push(job) {
        Ok(()) => shared.metrics.queue_depth.inc(),
        Err(PushError::Full(job)) => {
            shared.metrics.overloads.incr();
            job.session.send(&Response::Overloaded {
                id,
                retry_after_ms: shared.config.retry_after_ms,
            });
        }
        Err(PushError::Closed(job)) => {
            job.session.send(&Response::Error {
                id,
                kind: ErrorKind::Internal,
                message: "server is shutting down".into(),
            });
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let mut batch = BatchScratch::new();
    let mut cache = SnapshotCache::new();
    let mut jobs: Vec<Job> = Vec::new();
    loop {
        jobs.clear();
        let n = shared
            .queue
            .pop_batch(&mut jobs, shared.config.max_batch.max(1));
        if n == 0 {
            break;
        }
        shared.metrics.queue_depth.sub(n as i64);
        let mut snapshot = shared.snapshots.load_cached(&mut cache);

        // Ingest first: all inserts in the dequeued pack WAL-commit as a
        // group (one fsync) and publish as one snapshot, which the
        // pack's queries then read — writes ordered before reads that
        // were queued behind them.
        if jobs.iter().any(|j| matches!(j.kind, JobKind::Insert(_))) {
            ingest_batch(shared, &snapshot, &jobs);
            snapshot = shared.snapshots.load_cached(&mut cache);
        }

        let query_count = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Query(_)))
            .count();
        if query_count == 0 {
            continue;
        }
        if query_count == 1 {
            if let Some(job) = jobs.iter().find(|j| matches!(j.kind, JobKind::Query(_))) {
                run_job(shared, &snapshot, job, batch.search());
            }
            continue;
        }

        // A dequeued pack: answer already-expired jobs, run diagnostics
        // directives one at a time (a `#sleep` must not stall the rest
        // of the pack's responses), parse the remainder, and execute the
        // parsed queries as one spatially-grouped batch. One expired (or
        // malformed, or panicking) job never poisons its pack-mates:
        // each is answered individually and the rest still execute.
        let mut pack: Vec<(usize, Query)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let JobKind::Query(text) = &job.kind else {
                continue; // inserts already acknowledged above
            };
            if Instant::now() > job.deadline {
                shared.metrics.timeouts.incr();
                job.session.send(&Response::Timeout { id: job.id });
            } else if text.trim_start().starts_with('#') {
                run_job(shared, &snapshot, job, batch.search());
            } else {
                match catch_unwind(AssertUnwindSafe(|| psql::parse_query(text))) {
                    Ok(Ok(query)) => pack.push((i, query)),
                    Ok(Err(e)) => {
                        shared.metrics.query_errors.incr();
                        job.session.send(&Response::Error {
                            id: job.id,
                            kind: ErrorKind::from(&e),
                            message: e.to_string(),
                        });
                    }
                    Err(_) => {
                        shared.metrics.internal_errors.incr();
                        job.session.send(&Response::Error {
                            id: job.id,
                            kind: ErrorKind::Internal,
                            message: "query execution panicked (contained; session unaffected)"
                                .into(),
                        });
                    }
                }
            }
        }
        if pack.is_empty() {
            continue;
        }
        let (idxs, queries): (Vec<usize>, Vec<Query>) = pack.into_iter().unzip();
        if queries.len() >= 2 {
            shared.metrics.query_batches.incr();
            shared.metrics.batched_queries.add(queries.len() as u64);
        }
        let started = Instant::now();
        let results = catch_unwind(AssertUnwindSafe(|| {
            psql::exec::execute_batch_with_scratch(
                &snapshot.db,
                &queries,
                &shared.functions,
                &mut batch,
            )
        }));
        match results {
            Ok(results) => {
                // The pack ran as one grouped traversal; its wall time
                // split evenly is the honest per-query cost.
                let share = started.elapsed() / queries.len() as u32;
                for (&i, result) in idxs.iter().zip(results) {
                    shared.metrics.query_latency.record(share);
                    let job = &jobs[i];
                    if Instant::now() > job.deadline {
                        shared.metrics.timeouts.incr();
                        job.session.send(&Response::Timeout { id: job.id });
                        continue;
                    }
                    match result {
                        Ok(result) => {
                            shared.metrics.ok.incr();
                            job.session.send(&Response::Result {
                                id: job.id,
                                epoch: snapshot.epoch,
                                result,
                            });
                        }
                        Err(e) => {
                            shared.metrics.query_errors.incr();
                            job.session.send(&Response::Error {
                                id: job.id,
                                kind: ErrorKind::from(&e),
                                message: e.to_string(),
                            });
                        }
                    }
                }
            }
            Err(_) => {
                // A panic mid-batch is contained by retrying each job
                // alone, so only the offending query answers the typed
                // internal error and innocent pack-mates still succeed.
                for &i in &idxs {
                    run_job(shared, &snapshot, &jobs[i], batch.search());
                }
            }
        }
    }
}

/// Applies every insert in a dequeued pack as one group commit: validate
/// against the pinned snapshot, append all records to the WAL under one
/// fsync, publish one snapshot holding all of them, then acknowledge.
/// Nothing is acknowledged before it is durable (when a WAL is
/// configured) *and* published.
fn ingest_batch(shared: &Arc<Shared>, snapshot: &crate::snapshot::DatabaseSnapshot, jobs: &[Job]) {
    let mut accepted: Vec<(&Job, &InsertRecord, Vec<u8>)> = Vec::new();
    for job in jobs {
        let JobKind::Insert(rec) = &job.kind else {
            continue;
        };
        if Instant::now() > job.deadline {
            shared.metrics.timeouts.incr();
            job.session.send(&Response::Timeout { id: job.id });
            continue;
        }
        if let Err(e) = snapshot.db.picture(&rec.picture) {
            shared.metrics.query_errors.incr();
            job.session.send(&Response::Error {
                id: job.id,
                kind: ErrorKind::from(&e),
                message: e.to_string(),
            });
            continue;
        }
        match rec.encode() {
            Ok(bytes) if bytes.len() <= WAL_RECORD_MAX => accepted.push((job, rec, bytes)),
            Ok(bytes) => {
                shared.metrics.query_errors.incr();
                job.session.send(&Response::Error {
                    id: job.id,
                    kind: ErrorKind::Semantic,
                    message: format!(
                        "insert of {} bytes exceeds the WAL record limit {WAL_RECORD_MAX}",
                        bytes.len()
                    ),
                });
            }
            Err(e) => {
                shared.metrics.query_errors.incr();
                job.session.send(&Response::Error {
                    id: job.id,
                    kind: ErrorKind::from(&e),
                    message: e.to_string(),
                });
            }
        }
    }
    if accepted.is_empty() {
        return;
    }

    // The writer lock spans WAL commit *and* snapshot publication, so
    // the durable order and the published order can never diverge, and
    // no concurrent writer can publish a snapshot missing these records.
    let mut writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(wal) = writer.as_mut() {
        let mut bytes_appended = 0u64;
        let committed = (|| {
            for (_, _, bytes) in &accepted {
                wal.append(bytes)?;
                bytes_appended += bytes.len() as u64;
            }
            wal.sync()
        })();
        match committed {
            Ok(()) => {
                shared.metrics.wal_appends.add(accepted.len() as u64);
                shared.metrics.wal_bytes.add(bytes_appended);
                shared.metrics.wal_syncs.incr();
            }
            Err(e) => {
                // Durability failed: acknowledge nothing, apply nothing.
                // (The WAL rolls back its in-memory framing on a failed
                // append, so the next batch starts from a clean tail.)
                drop(writer);
                shared.metrics.internal_errors.add(accepted.len() as u64);
                for (job, _, _) in &accepted {
                    job.session.send(&Response::Error {
                        id: job.id,
                        kind: ErrorKind::Internal,
                        message: format!("write-ahead log failure: {e}"),
                    });
                }
                return;
            }
        }
    }
    let epoch = shared.snapshots.update(|db| {
        for (_, rec, _) in &accepted {
            let opens_delta = db
                .picture(&rec.picture)
                .map(|p| p.frozen().is_some() && p.delta_len() == 0)
                .unwrap_or(false);
            match db.add_object(&rec.picture, rec.object.clone(), &rec.label) {
                Ok(_) => {
                    if opens_delta {
                        eprintln!(
                            "[psql-server] picture {:?}: first dynamic write since pack — \
                             frozen tree retained, insert buffered in delta (merge pending)",
                            rec.picture
                        );
                    }
                }
                Err(e) => {
                    // Validated above against the same lineage; a failure
                    // here would be a picture vanishing mid-flight.
                    eprintln!("[psql-server] insert apply failed after WAL commit: {e}");
                }
            }
        }
    });
    drop(writer);
    shared.metrics.snapshots_published.incr();
    shared.metrics.inserts.add(accepted.len() as u64);
    for (job, _, _) in &accepted {
        shared.metrics.ok.incr();
        job.session.send(&Response::Done { id: job.id, epoch });
    }
}

/// The background merge thread: once the delta population crosses the
/// configured threshold, fold every delta into a freshly packed + frozen
/// main tree on a snapshot clone and publish the result. Queries keep
/// serving the old snapshot throughout; the swap is the usual atomic
/// epoch bump.
fn merge_loop(shared: &Arc<Shared>) {
    loop {
        std::thread::sleep(shared.config.merge_interval);
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        if shared.snapshots.load().db.delta_len() < shared.config.merge_threshold {
            continue;
        }
        let started = Instant::now();
        let guard = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut folded = 0;
        let epoch = shared.snapshots.update(|db| folded = db.merge_deltas());
        drop(guard);
        shared.metrics.merges.incr();
        shared.metrics.snapshots_published.incr();
        shared.metrics.admin_latency.record(started.elapsed());
        eprintln!(
            "[psql-server] background merge folded {folded} delta tree(s) into packed + \
             frozen main trees (epoch {epoch}, {:?})",
            started.elapsed()
        );
    }
}

/// Executes one job exactly as the pre-batching worker did: deadline
/// check, parse + execute under `catch_unwind`, deadline re-check,
/// respond.
fn run_job(
    shared: &Shared,
    snapshot: &crate::snapshot::DatabaseSnapshot,
    job: &Job,
    scratch: &mut SearchScratch,
) {
    let JobKind::Query(text) = &job.kind else {
        return; // inserts flow through ingest_batch, never here
    };
    if Instant::now() > job.deadline {
        // Expired while queued: answer without executing.
        shared.metrics.timeouts.incr();
        job.session.send(&Response::Timeout { id: job.id });
        return;
    }
    let started = Instant::now();
    let outcome = run_query(&snapshot.db, text, &shared.functions, scratch);
    shared.metrics.query_latency.record(started.elapsed());
    if Instant::now() > job.deadline {
        // Finished, but past the promise: the client already moved
        // on, so report the timeout it observed.
        shared.metrics.timeouts.incr();
        job.session.send(&Response::Timeout { id: job.id });
        return;
    }
    match outcome {
        Ok(result) => {
            shared.metrics.ok.incr();
            job.session.send(&Response::Result {
                id: job.id,
                epoch: snapshot.epoch,
                result,
            });
        }
        Err(QueryFailure::Psql(e)) => {
            shared.metrics.query_errors.incr();
            job.session.send(&Response::Error {
                id: job.id,
                kind: ErrorKind::from(&e),
                message: e.to_string(),
            });
        }
        Err(QueryFailure::Panicked) => {
            shared.metrics.internal_errors.incr();
            job.session.send(&Response::Error {
                id: job.id,
                kind: ErrorKind::Internal,
                message: "query execution panicked (contained; session unaffected)".into(),
            });
        }
    }
}

enum QueryFailure {
    Psql(PsqlError),
    Panicked,
}

/// Parses and executes one query against a pinned snapshot.
///
/// Supports one diagnostics directive: a query text of
/// `#sleep <millis>` (optionally followed by a query) sleeps before
/// executing — the deterministic way to exercise deadline enforcement
/// from tests and the CI smoke script.
fn run_query(
    db: &PictorialDatabase,
    text: &str,
    functions: &FunctionRegistry,
    scratch: &mut SearchScratch,
) -> Result<ResultSet, QueryFailure> {
    let mut text = text.trim();
    if let Some(rest) = text.strip_prefix("#sleep") {
        let rest = rest.trim_start();
        let (ms_str, remainder) = match rest.split_once(char::is_whitespace) {
            Some((ms, r)) => (ms, r.trim()),
            None => (rest, ""),
        };
        let ms: u64 = ms_str.parse().map_err(|_| {
            QueryFailure::Psql(PsqlError::Parse(format!(
                "#sleep wants milliseconds, got {ms_str:?}"
            )))
        })?;
        // Cap so a hostile client cannot park a worker for minutes.
        std::thread::sleep(Duration::from_millis(ms.min(10_000)));
        if remainder.is_empty() {
            return Ok(ResultSet::default());
        }
        text = remainder;
    }
    let text = text.to_owned();
    // Workers must survive any executor bug: contain panics and answer a
    // typed internal error instead. The snapshot is immutable, so no
    // broken invariants can leak out of an unwound execution.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let query = psql::parse_query(&text)?;
        psql::exec::execute_with_scratch(db, &query, functions, scratch)
    }));
    match result {
        Ok(Ok(rs)) => Ok(rs),
        Ok(Err(e)) => Err(QueryFailure::Psql(e)),
        Err(_) => Err(QueryFailure::Panicked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleep_directive_parses() {
        let db = PictorialDatabase::with_us_map();
        let functions = FunctionRegistry::with_builtins();
        let mut scratch = SearchScratch::new();
        let t0 = Instant::now();
        let r = run_query(&db, "#sleep 30", &functions, &mut scratch);
        assert!(t0.elapsed() >= Duration::from_millis(30));
        assert!(r.is_ok_and(|rs| rs.is_empty()));
        // Directive followed by a real query.
        let r = run_query(
            &db,
            "#sleep 1 select zone from time-zones",
            &functions,
            &mut scratch,
        )
        .ok()
        .unwrap();
        assert_eq!(r.len(), 4);
        // Bad millis is a parse error, not a hang.
        assert!(matches!(
            run_query(&db, "#sleep lots", &functions, &mut scratch),
            Err(QueryFailure::Psql(PsqlError::Parse(_)))
        ));
    }
}
