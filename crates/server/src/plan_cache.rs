//! A bounded cached-plan table keyed by PSQL query text.
//!
//! Interactive pictorial workloads repeat themselves — the same window
//! query pans across a map, the same juxtaposition refreshes on a timer
//! — so the server caches both stages of query preparation:
//!
//! 1. **Parse cache:** query text → [`Arc<Query>`]. The AST depends
//!    only on the text, never on data, so a parse-cache entry is valid
//!    forever.
//! 2. **Plan cache:** each entry may also pin the compiled [`Plan`],
//!    stamped with the snapshot epoch it was planned against. Plans
//!    embed data-dependent choices (access paths, spatial strategy), so
//!    a plan is served only while the executing snapshot's epoch
//!    matches; a stale stamp falls back to re-planning and restamps.
//!
//! Eviction is LRU over a bounded entry count. Epoch stamping already
//! retires plans naturally as snapshots advance, but `REPACK` and
//! `PACK EXTERNAL` rebuild every picture's physical tree wholesale —
//! those paths call [`PlanCache::invalidate_plans`] explicitly so no
//! plan compiled against the pre-rebuild layout outlives it.
//!
//! Locking: one mutex over the table, held only for HashMap operations —
//! parsing and planning (the expensive parts) run outside the lock. Two
//! threads may race to prepare the same text; both succeed, last insert
//! wins, and the loser's work is wasted rather than serialized.

use psql::ast::Query;
use psql::plan::Plan;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One cached preparation of a query text.
struct Entry {
    query: Arc<Query>,
    /// Compiled plan stamped with the snapshot epoch it is valid for.
    plan: Option<(u64, Arc<Plan>)>,
    /// Logical clock of the entry's last use, for LRU eviction.
    last_used: u64,
}

struct State {
    map: HashMap<String, Entry>,
    /// Monotone logical clock; bumped on every touch.
    tick: u64,
}

/// What a cache probe found for a query text.
pub enum Prepared {
    /// Nothing cached — the caller parses (and plans) from scratch, then
    /// offers the results back via [`PlanCache::store`].
    Miss,
    /// The AST is cached but no plan is valid for the executing epoch.
    Query(Arc<Query>),
    /// Both stages cached and valid: execute directly.
    Plan(Arc<Query>, Arc<Plan>),
}

/// The bounded LRU table. Capacity `0` disables caching entirely (every
/// probe misses, every store is dropped).
pub struct PlanCache {
    capacity: usize,
    state: Mutex<State>,
}

impl PlanCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            state: Mutex::new(State {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// Probes the cache for `text`, wanting a plan valid at `epoch`.
    pub fn prepare(&self, text: &str, epoch: u64) -> Prepared {
        if self.capacity == 0 {
            return Prepared::Miss;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        let Some(entry) = state.map.get_mut(text) else {
            return Prepared::Miss;
        };
        entry.last_used = tick;
        match &entry.plan {
            Some((stamp, plan)) if *stamp == epoch => {
                Prepared::Plan(Arc::clone(&entry.query), Arc::clone(plan))
            }
            _ => Prepared::Query(Arc::clone(&entry.query)),
        }
    }

    /// Offers a freshly prepared query (and optionally its plan, stamped
    /// with `epoch`) back to the cache. Returns `true` when the insert
    /// evicted an older entry to make room.
    pub fn store(&self, text: &str, query: Arc<Query>, plan: Option<(u64, Arc<Plan>)>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.map.get_mut(text) {
            entry.last_used = tick;
            entry.query = query;
            if plan.is_some() {
                entry.plan = plan;
            }
            return false;
        }
        let mut evicted = false;
        if state.map.len() >= self.capacity {
            // Linear LRU scan: the capacity is small (hundreds), misses
            // are already paying a parse, and this keeps the entry flat.
            if let Some(oldest) = state
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                state.map.remove(&oldest);
                evicted = true;
            }
        }
        state.map.insert(
            text.to_owned(),
            Entry {
                query,
                plan,
                last_used: tick,
            },
        );
        evicted
    }

    /// Drops every cached plan (parse entries survive — text → AST never
    /// goes stale). Called when `REPACK` / `PACK EXTERNAL` rebuild the
    /// physical trees out from under compiled access paths.
    pub fn invalidate_plans(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        for entry in state.map.values_mut() {
            entry.plan = None;
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map
            .len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psql::database::PictorialDatabase;

    fn prep(text: &str, db: &PictorialDatabase) -> (Arc<Query>, Arc<Plan>) {
        let q = Arc::new(psql::parse_query(text).expect("parse"));
        let p = Arc::new(psql::plan::plan(db, &q).expect("plan"));
        (q, p)
    }

    const Q1: &str = "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}";
    const Q2: &str = "select zone from time-zones";

    #[test]
    fn miss_store_hit_cycle() {
        let db = PictorialDatabase::with_us_map();
        let cache = PlanCache::new(4);
        assert!(matches!(cache.prepare(Q1, 1), Prepared::Miss));
        let (q, p) = prep(Q1, &db);
        cache.store(Q1, Arc::clone(&q), Some((1, Arc::clone(&p))));
        match cache.prepare(Q1, 1) {
            Prepared::Plan(cq, cp) => {
                assert!(Arc::ptr_eq(&cq, &q));
                assert!(Arc::ptr_eq(&cp, &p));
            }
            _ => panic!("expected full plan hit"),
        }
        // A different epoch demotes the hit to parse-only.
        assert!(matches!(cache.prepare(Q1, 2), Prepared::Query(_)));
    }

    #[test]
    fn restamping_updates_the_epoch() {
        let db = PictorialDatabase::with_us_map();
        let cache = PlanCache::new(4);
        let (q, p) = prep(Q1, &db);
        cache.store(Q1, Arc::clone(&q), Some((1, Arc::clone(&p))));
        // Re-plan at epoch 3 and store over the stale stamp.
        cache.store(Q1, q, Some((3, p)));
        assert!(matches!(cache.prepare(Q1, 3), Prepared::Plan(..)));
        assert!(matches!(cache.prepare(Q1, 1), Prepared::Query(_)));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let db = PictorialDatabase::with_us_map();
        let cache = PlanCache::new(2);
        let (q1, _) = prep(Q1, &db);
        let (q2, _) = prep(Q2, &db);
        assert!(!cache.store(Q1, q1, None));
        assert!(!cache.store(Q2, q2, None));
        // Touch Q1 so Q2 is the LRU victim.
        assert!(matches!(cache.prepare(Q1, 1), Prepared::Query(_)));
        let (q3, _) = prep("select population from cities", &db);
        assert!(cache.store("select population from cities", q3, None));
        assert_eq!(cache.len(), 2);
        assert!(matches!(cache.prepare(Q2, 1), Prepared::Miss));
        assert!(matches!(cache.prepare(Q1, 1), Prepared::Query(_)));
    }

    #[test]
    fn invalidate_drops_plans_keeps_parses() {
        let db = PictorialDatabase::with_us_map();
        let cache = PlanCache::new(4);
        let (q, p) = prep(Q1, &db);
        cache.store(Q1, q, Some((1, p)));
        cache.invalidate_plans();
        assert!(matches!(cache.prepare(Q1, 1), Prepared::Query(_)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let db = PictorialDatabase::with_us_map();
        let cache = PlanCache::new(0);
        let (q, p) = prep(Q1, &db);
        assert!(!cache.store(Q1, q, Some((1, p))));
        assert!(matches!(cache.prepare(Q1, 1), Prepared::Miss));
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_plan_executes_identically() {
        use psql::functions::FunctionRegistry;
        use rtree_index::SearchScratch;

        let db = PictorialDatabase::with_us_map();
        let functions = FunctionRegistry::with_builtins();
        let mut scratch = SearchScratch::new();
        let (q, p) = prep(Q1, &db);
        let direct =
            psql::exec::execute_with_scratch(&db, &q, &functions, &mut scratch).expect("direct");
        let via_plan = psql::exec::execute_plan_with_scratch(&db, &p, &functions, &mut scratch)
            .expect("via plan");
        assert_eq!(direct, via_plan);
    }
}
