//! The length-prefixed wire protocol.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! [u32 payload length, big-endian][payload bytes]
//! ```
//!
//! Request payloads are `[u64 request id][u8 opcode][opcode body]`;
//! response payloads are `[u64 request id][u8 status][status body]`.
//! All integers are big-endian; all strings are length-prefixed UTF-8.
//! The request id is an opaque client-chosen correlation token echoed
//! verbatim in the response, so a client may pipeline requests.
//!
//! Decoding is defensive by construction: a frame is read fully off the
//! wire *before* any of it is interpreted, so a malformed payload can
//! never desynchronize the stream — the server answers a typed
//! [`ErrorKind::Protocol`] error and keeps the session alive. The only
//! unrecoverable input is a frame header whose length exceeds
//! [`MAX_FRAME_LEN`] (the remaining stream cannot be re-framed; the
//! connection is answered then closed).

use pictorial_relational::Value;
use psql::result::Highlight;
use psql::{PsqlError, ResultSet};
use rtree_geom::{Point, Region, Segment, SpatialObject};
use std::io::{self, Read, Write};

/// Hard ceiling on a frame's payload size (1 MiB). A header announcing
/// more than this is treated as garbage, not as a gigantic allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute a PSQL query. `timeout_ms == 0` means "use the server's
    /// default deadline".
    Query {
        /// Correlation id echoed in the response.
        id: u64,
        /// Per-request deadline override in milliseconds (0 = default).
        timeout_ms: u32,
        /// PSQL query text.
        text: String,
    },
    /// Fetch the metrics registry as JSON.
    Stats {
        /// Correlation id echoed in the response.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id echoed in the response.
        id: u64,
    },
    /// Admin: rebuild every picture's packed R-tree and publish the
    /// result as a new snapshot.
    Repack {
        /// Correlation id echoed in the response.
        id: u64,
    },
    /// Admin: begin graceful shutdown (drain in-flight queries).
    Shutdown {
        /// Correlation id echoed in the response.
        id: u64,
    },
    /// Insert one spatial object into a picture. Rides the worker pool
    /// like a query; acknowledged with [`Response::Done`] only after the
    /// write is durable in the server's WAL (when one is configured) and
    /// published in a fresh snapshot.
    Insert {
        /// Correlation id echoed in the response.
        id: u64,
        /// Target picture name.
        picture: String,
        /// Object label.
        label: String,
        /// The object to insert.
        object: SpatialObject,
    },
    /// Admin: rebuild every picture's packed R-tree with the out-of-core
    /// external packer, bounding the rebuild's resident memory by the
    /// given budget, and publish the result as a new snapshot.
    PackExternal {
        /// Correlation id echoed in the response.
        id: u64,
        /// Memory budget in bytes for the external pack.
        budget_bytes: u64,
        /// Packer pipeline thread count (0 = machine default).
        threads: u32,
    },
}

const OP_QUERY: u8 = 1;
const OP_STATS: u8 = 2;
const OP_PING: u8 = 3;
const OP_REPACK: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_INSERT: u8 = 6;
const OP_PACK_EXTERNAL: u8 = 7;

/// Classifies an error reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// PSQL lexical error.
    Lex,
    /// PSQL syntax error.
    Parse,
    /// PSQL semantic error.
    Semantic,
    /// Error from the relational substrate.
    Relational,
    /// Malformed wire input (bad frame payload, junk opcode, invalid
    /// UTF-8, …).
    Protocol,
    /// Server-side failure (a panic contained by the worker, shutdown
    /// race, …).
    Internal,
}

impl ErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            ErrorKind::Lex => 0,
            ErrorKind::Parse => 1,
            ErrorKind::Semantic => 2,
            ErrorKind::Relational => 3,
            ErrorKind::Protocol => 4,
            ErrorKind::Internal => 5,
        }
    }

    fn from_u8(b: u8) -> Result<Self, String> {
        Ok(match b {
            0 => ErrorKind::Lex,
            1 => ErrorKind::Parse,
            2 => ErrorKind::Semantic,
            3 => ErrorKind::Relational,
            4 => ErrorKind::Protocol,
            5 => ErrorKind::Internal,
            _ => return Err(format!("unknown error kind {b}")),
        })
    }
}

impl From<&PsqlError> for ErrorKind {
    fn from(e: &PsqlError) -> Self {
        match e {
            PsqlError::Lex(_) => ErrorKind::Lex,
            PsqlError::Parse(_) => ErrorKind::Parse,
            PsqlError::Semantic(_) => ErrorKind::Semantic,
            PsqlError::Relational(_) => ErrorKind::Relational,
            PsqlError::Internal(_) => ErrorKind::Internal,
        }
    }
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A successful query result, stamped with the epoch of the snapshot
    /// it was computed against.
    Result {
        /// Correlation id of the request.
        id: u64,
        /// Snapshot epoch the query ran against.
        epoch: u64,
        /// The alphanumeric + pictorial result.
        result: ResultSet,
    },
    /// A typed error.
    Error {
        /// Correlation id of the request (0 if it could not be parsed).
        id: u64,
        /// Error class.
        kind: ErrorKind,
        /// Human-readable message.
        message: String,
    },
    /// The request's deadline expired before (or while) it ran.
    Timeout {
        /// Correlation id of the request.
        id: u64,
    },
    /// Backpressure: the request queue is full; retry after the hinted
    /// delay.
    Overloaded {
        /// Correlation id of the request.
        id: u64,
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u32,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// Correlation id of the request.
        id: u64,
    },
    /// Answer to [`Request::Stats`]: the metrics registry as JSON.
    Stats {
        /// Correlation id of the request.
        id: u64,
        /// Metrics snapshot, JSON text.
        json: String,
    },
    /// Acknowledgement of an admin request (repack / shutdown), carrying
    /// the now-current snapshot epoch.
    Done {
        /// Correlation id of the request.
        id: u64,
        /// Snapshot epoch after the admin action.
        epoch: u64,
    },
}

const ST_RESULT: u8 = 0;
const ST_ERROR: u8 = 1;
const ST_TIMEOUT: u8 = 2;
const ST_OVERLOADED: u8 = 3;
const ST_PONG: u8 = 4;
const ST_STATS: u8 = 5;
const ST_DONE: u8 = 6;

// ---------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------

/// Outcome of pulling one frame off a stream.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end-of-stream on a frame boundary.
    Eof,
    /// The stop predicate fired while the stream was idle (no partial
    /// frame consumed) or mid-frame during shutdown.
    Stopped,
    /// The header announced more than [`MAX_FRAME_LEN`] bytes; the
    /// stream cannot be re-framed.
    TooLarge(u32),
    /// End-of-stream in the middle of a frame.
    Truncated,
    /// Transport error.
    Io(io::Error),
}

/// Reads exactly `buf.len()` bytes, treating read-timeouts as polling
/// ticks: on each tick `stop()` is consulted, so a blocked reader notices
/// shutdown without losing partially-read bytes.
fn read_full<R: Read>(
    stream: &mut R,
    buf: &mut [u8],
    stop: &dyn Fn() -> bool,
) -> Result<usize, FrameRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                if stop() {
                    return Err(FrameRead::Stopped);
                }
            }
            Err(e) => return Err(FrameRead::Io(e)),
        }
    }
    Ok(filled)
}

/// Reads one frame. `stop` is polled whenever the underlying stream
/// read times out (the server sets a short read timeout on sessions), so
/// an idle connection notices shutdown promptly.
pub fn read_frame<R: Read>(stream: &mut R, stop: &dyn Fn() -> bool) -> FrameRead {
    let mut header = [0u8; 4];
    match read_full(stream, &mut header, stop) {
        Ok(0) => return FrameRead::Eof,
        Ok(n) if n < 4 => return FrameRead::Truncated,
        Ok(_) => {}
        Err(other) => return other,
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return FrameRead::TooLarge(len);
    }
    let mut payload = vec![0u8; len as usize];
    match read_full(stream, &mut payload, stop) {
        Ok(n) if n < payload.len() => FrameRead::Truncated,
        Ok(_) => FrameRead::Frame(payload),
        Err(other) => other,
    }
}

/// Incremental frame reassembly for nonblocking streams.
///
/// The blocking [`read_frame`] pulls a whole frame per call; an event
/// loop instead receives arbitrary byte chunks as the socket becomes
/// readable. `FrameDecoder` buffers those chunks and yields complete
/// frame payloads as they materialize — a frame may arrive one byte at a
/// time across many readiness events, or many frames may land in a
/// single `read`.
///
/// A header announcing more than [`MAX_FRAME_LEN`] bytes poisons the
/// decoder permanently (the remaining stream cannot be re-framed); the
/// caller reports the error and closes the connection.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Offset of the first unconsumed byte in `buf`; consumed prefixes
    /// are compacted away lazily to keep `extend` O(1) amortized.
    start: usize,
    poisoned: bool,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends freshly-read bytes from the socket.
    pub fn extend(&mut self, chunk: &[u8]) {
        if self.poisoned {
            return;
        }
        // Compact once the dead prefix dominates the buffer, so a
        // long-lived connection doesn't accrete every frame it ever saw.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Yields the next complete frame payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes"; `Err(len)` means a header
    /// claimed `len > MAX_FRAME_LEN` bytes and the stream is
    /// unrecoverable (the decoder stays poisoned).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, u32> {
        if self.poisoned {
            return Ok(None);
        }
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]);
        if len > MAX_FRAME_LEN {
            self.poisoned = true;
            return Err(len);
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = avail[4..total].to_vec();
        self.start += total;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        }
        Ok(Some(payload))
    }

    /// `true` when bytes of an incomplete frame are buffered — EOF now
    /// means the peer died mid-frame, not a clean close.
    pub fn mid_frame(&self) -> bool {
        !self.poisoned && self.start < self.buf.len()
    }

    /// `true` after an oversized header made the stream unrecoverable.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }
}

/// Writes `payload` as one frame.
pub fn write_frame<W: Write>(stream: &mut W, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_LEN as u64);
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

// ---------------------------------------------------------------------
// Payload codec
// ---------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Bytes left between the cursor and the end of the payload. Any
    /// count field claiming more elements than could possibly fit in
    /// this many bytes is lying; see [`Cursor::check_count`].
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Guards an attacker-controlled element count *before* it sizes an
    /// allocation: each element occupies at least `min_bytes` on the
    /// wire, so `n` elements cannot be honest unless `n * min_bytes`
    /// bytes remain.
    fn check_count(&self, n: usize, min_bytes: usize, what: &str) -> Result<(), String> {
        if n.saturating_mul(min_bytes) > self.remaining() {
            return Err(format!(
                "claimed {n} {what} cannot fit in {} remaining bytes",
                self.remaining()
            ));
        }
        Ok(())
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], String> {
        self.take(N)?
            .try_into()
            .map_err(|_| "internal cursor size mismatch".to_owned())
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 in string".to_owned())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_be_bytes());
        }
        Value::Float(f) => {
            out.push(2);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::Str(s) => {
            out.push(3);
            put_string(out, s);
        }
        Value::Pointer(p) => {
            out.push(4);
            out.extend_from_slice(&p.to_be_bytes());
        }
    }
}

const OBJ_POINT: u8 = 0;
const OBJ_SEGMENT: u8 = 1;
const OBJ_REGION: u8 = 2;

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_be_bytes());
}

fn put_object(out: &mut Vec<u8>, obj: &SpatialObject) {
    match obj {
        SpatialObject::Point(p) => {
            out.push(OBJ_POINT);
            put_f64(out, p.x);
            put_f64(out, p.y);
        }
        SpatialObject::Segment(s) => {
            out.push(OBJ_SEGMENT);
            put_f64(out, s.a.x);
            put_f64(out, s.a.y);
            put_f64(out, s.b.x);
            put_f64(out, s.b.y);
        }
        SpatialObject::Region(r) => {
            out.push(OBJ_REGION);
            out.extend_from_slice(&(r.vertices().len() as u32).to_be_bytes());
            for v in r.vertices() {
                put_f64(out, v.x);
                put_f64(out, v.y);
            }
        }
    }
}

fn get_f64(c: &mut Cursor<'_>) -> Result<f64, String> {
    Ok(f64::from_bits(u64::from_be_bytes(c.array()?)))
}

fn get_point(c: &mut Cursor<'_>) -> Result<Point, String> {
    Ok(Point::new(get_f64(c)?, get_f64(c)?))
}

fn get_object(c: &mut Cursor<'_>) -> Result<SpatialObject, String> {
    Ok(match c.u8()? {
        OBJ_POINT => SpatialObject::Point(get_point(c)?),
        OBJ_SEGMENT => SpatialObject::Segment(Segment {
            a: get_point(c)?,
            b: get_point(c)?,
        }),
        OBJ_REGION => {
            let n = c.u32()? as usize;
            // 16 bytes per vertex on the wire.
            c.check_count(n, 16, "vertices")?;
            let mut verts = Vec::with_capacity(n);
            for _ in 0..n {
                verts.push(get_point(c)?);
            }
            SpatialObject::Region(Region::new(verts).map_err(|e| format!("bad region: {e}"))?)
        }
        t => return Err(format!("unknown object kind {t}")),
    })
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value, String> {
    Ok(match c.u8()? {
        0 => Value::Null,
        1 => Value::Int(i64::from_be_bytes(c.array()?)),
        2 => Value::Float(f64::from_bits(u64::from_be_bytes(c.array()?))),
        3 => Value::Str(c.string()?),
        4 => Value::Pointer(u64::from_be_bytes(c.array()?)),
        t => return Err(format!("unknown value tag {t}")),
    })
}

/// Encodes a request payload (frame body, without the length header).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Query {
            id,
            timeout_ms,
            text,
        } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_QUERY);
            out.extend_from_slice(&timeout_ms.to_be_bytes());
            put_string(&mut out, text);
        }
        Request::Stats { id } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_STATS);
        }
        Request::Ping { id } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_PING);
        }
        Request::Repack { id } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_REPACK);
        }
        Request::Shutdown { id } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_SHUTDOWN);
        }
        Request::Insert {
            id,
            picture,
            label,
            object,
        } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_INSERT);
            put_string(&mut out, picture);
            put_string(&mut out, label);
            put_object(&mut out, object);
        }
        Request::PackExternal {
            id,
            budget_bytes,
            threads,
        } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(OP_PACK_EXTERNAL);
            out.extend_from_slice(&budget_bytes.to_be_bytes());
            out.extend_from_slice(&threads.to_be_bytes());
        }
    }
    out
}

/// Decodes a request payload. Errors are protocol errors to report back
/// to the client; the frame is already consumed, so the session survives.
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let op = c.u8()?;
    let req = match op {
        OP_QUERY => {
            let timeout_ms = c.u32()?;
            let text = c.string()?;
            Request::Query {
                id,
                timeout_ms,
                text,
            }
        }
        OP_STATS => Request::Stats { id },
        OP_PING => Request::Ping { id },
        OP_REPACK => Request::Repack { id },
        OP_SHUTDOWN => Request::Shutdown { id },
        OP_INSERT => {
            let picture = c.string()?;
            let label = c.string()?;
            let object = get_object(&mut c)?;
            Request::Insert {
                id,
                picture,
                label,
                object,
            }
        }
        OP_PACK_EXTERNAL => Request::PackExternal {
            id,
            budget_bytes: c.u64()?,
            threads: c.u32()?,
        },
        _ => return Err(format!("unknown opcode {op}")),
    };
    c.done()?;
    Ok(req)
}

/// Best-effort extraction of the request id from a payload that failed
/// to decode, so the error response still correlates when possible.
pub fn peek_request_id(payload: &[u8]) -> u64 {
    match payload.get(..8).and_then(|s| <[u8; 8]>::try_from(s).ok()) {
        Some(bytes) => u64::from_be_bytes(bytes),
        None => 0,
    }
}

/// Encodes a response payload (frame body, without the length header).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Result { id, epoch, result } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_RESULT);
            out.extend_from_slice(&epoch.to_be_bytes());
            out.extend_from_slice(&(result.columns.len() as u16).to_be_bytes());
            for col in &result.columns {
                put_string(&mut out, col);
            }
            out.extend_from_slice(&(result.rows.len() as u32).to_be_bytes());
            for row in &result.rows {
                for v in row {
                    put_value(&mut out, v);
                }
            }
            out.extend_from_slice(&(result.highlights.len() as u32).to_be_bytes());
            for h in &result.highlights {
                put_string(&mut out, &h.picture);
                out.extend_from_slice(&h.object.to_be_bytes());
                put_string(&mut out, &h.label);
            }
        }
        Response::Error { id, kind, message } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_ERROR);
            out.push(kind.to_u8());
            put_string(&mut out, message);
        }
        Response::Timeout { id } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_TIMEOUT);
        }
        Response::Overloaded { id, retry_after_ms } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_OVERLOADED);
            out.extend_from_slice(&retry_after_ms.to_be_bytes());
        }
        Response::Pong { id } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_PONG);
        }
        Response::Stats { id, json } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_STATS);
            put_string(&mut out, json);
        }
        Response::Done { id, epoch } => {
            out.extend_from_slice(&id.to_be_bytes());
            out.push(ST_DONE);
            out.extend_from_slice(&epoch.to_be_bytes());
        }
    }
    out
}

/// Decodes a response payload (the client side of the codec).
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let status = c.u8()?;
    let resp = match status {
        ST_RESULT => {
            let epoch = c.u64()?;
            // Every count below is attacker-controlled; check it against
            // the bytes actually present before letting it size a Vec.
            let ncols = c.u16()? as usize;
            c.check_count(ncols, 4, "columns")?; // u32 length prefix each
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                columns.push(c.string()?);
            }
            let nrows = c.u32()? as usize;
            // Each row carries ncols values of ≥ 1 byte (tag); a
            // zero-column result still can't claim more rows than bytes.
            c.check_count(nrows, ncols.max(1), "rows")?;
            let mut rows = Vec::with_capacity(nrows);
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    row.push(get_value(&mut c)?);
                }
                rows.push(row);
            }
            let nhl = c.u32()? as usize;
            // picture (≥4) + object (8) + label (≥4).
            c.check_count(nhl, 16, "highlights")?;
            let mut highlights = Vec::with_capacity(nhl);
            for _ in 0..nhl {
                let picture = c.string()?;
                let object = c.u64()?;
                let label = c.string()?;
                highlights.push(Highlight {
                    picture,
                    object,
                    label,
                });
            }
            Response::Result {
                id,
                epoch,
                result: ResultSet {
                    columns,
                    rows,
                    highlights,
                },
            }
        }
        ST_ERROR => {
            let kind = ErrorKind::from_u8(c.u8()?)?;
            let message = c.string()?;
            Response::Error { id, kind, message }
        }
        ST_TIMEOUT => Response::Timeout { id },
        ST_OVERLOADED => Response::Overloaded {
            id,
            retry_after_ms: c.u32()?,
        },
        ST_PONG => Response::Pong { id },
        ST_STATS => Response::Stats {
            id,
            json: c.string()?,
        },
        ST_DONE => Response::Done {
            id,
            epoch: c.u64()?,
        },
        _ => return Err(format!("unknown status {status}")),
    };
    c.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let enc = encode_request(&req);
        assert_eq!(decode_request(&enc).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let enc = encode_response(&resp);
        assert_eq!(decode_response(&enc).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Query {
            id: 42,
            timeout_ms: 250,
            text: "select * from cities".into(),
        });
        roundtrip_request(Request::Stats { id: 7 });
        roundtrip_request(Request::Ping { id: u64::MAX });
        roundtrip_request(Request::Repack { id: 0 });
        roundtrip_request(Request::Shutdown { id: 3 });
        roundtrip_request(Request::PackExternal {
            id: 11,
            budget_bytes: 64 * 1024 * 1024,
            threads: 4,
        });
    }

    #[test]
    fn insert_request_roundtrips_all_object_kinds() {
        use rtree_geom::Rect;
        roundtrip_request(Request::Insert {
            id: 8,
            picture: "us-map".into(),
            label: "Pittsburgh".into(),
            object: SpatialObject::Point(Point::new(-79.99, 40.44)),
        });
        roundtrip_request(Request::Insert {
            id: 9,
            picture: "highway-map".into(),
            label: "I-376".into(),
            object: SpatialObject::Segment(Segment {
                a: Point::new(0.0, -0.0),
                b: Point::new(f64::MIN_POSITIVE, 7.25),
            }),
        });
        roundtrip_request(Request::Insert {
            id: 10,
            picture: "lake-map".into(),
            label: "Erie".into(),
            object: SpatialObject::Region(Region::rectangle(Rect::new(1.0, 2.0, 3.0, 4.0))),
        });
    }

    #[test]
    fn insert_decode_rejects_bad_objects() {
        // Unknown object kind.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(OP_INSERT);
        put_string(&mut bad, "p");
        put_string(&mut bad, "l");
        bad.push(7); // junk kind
        assert!(decode_request(&bad).unwrap_err().contains("object kind"));

        // Vertex-count lie: claims u32::MAX vertices backed by no bytes.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(OP_INSERT);
        put_string(&mut bad, "p");
        put_string(&mut bad, "l");
        bad.push(OBJ_REGION);
        bad.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_request(&bad).unwrap_err().contains("vertices"));

        // A region the geometry layer refuses (too few vertices).
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(OP_INSERT);
        put_string(&mut bad, "p");
        put_string(&mut bad, "l");
        bad.push(OBJ_REGION);
        bad.extend_from_slice(&1u32.to_be_bytes());
        bad.extend_from_slice(&[0u8; 16]);
        assert!(decode_request(&bad).is_err());
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Result {
            id: 9,
            epoch: 4,
            result: ResultSet {
                columns: vec!["city".into(), "population".into(), "loc".into()],
                rows: vec![
                    vec![
                        Value::str("Boston"),
                        Value::Int(600_000),
                        Value::Pointer(17),
                    ],
                    vec![Value::Null, Value::Float(2.5), Value::Pointer(0)],
                ],
                highlights: vec![Highlight {
                    picture: "us-map".into(),
                    object: 17,
                    label: "Boston".into(),
                }],
            },
        });
        roundtrip_response(Response::Error {
            id: 1,
            kind: ErrorKind::Parse,
            message: "oops".into(),
        });
        roundtrip_response(Response::Timeout { id: 2 });
        roundtrip_response(Response::Overloaded {
            id: 3,
            retry_after_ms: 10,
        });
        roundtrip_response(Response::Pong { id: 4 });
        roundtrip_response(Response::Stats {
            id: 5,
            json: "{}".into(),
        });
        roundtrip_response(Response::Done { id: 6, epoch: 2 });
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for f in [0.0, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            let mut out = Vec::new();
            put_value(&mut out, &Value::Float(f));
            let mut c = Cursor::new(&out);
            match get_value(&mut c).unwrap() {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0; 8]).is_err()); // id but no opcode
        assert!(decode_request(&[0, 0, 0, 0, 0, 0, 0, 1, 99]).is_err()); // junk opcode
                                                                         // Query whose string length overruns the payload.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(OP_QUERY);
        bad.extend_from_slice(&0u32.to_be_bytes());
        bad.extend_from_slice(&1000u32.to_be_bytes()); // claims 1000 bytes
        bad.extend_from_slice(b"short");
        assert!(decode_request(&bad).is_err());
        // Invalid UTF-8 in the query text.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(OP_QUERY);
        bad.extend_from_slice(&0u32.to_be_bytes());
        bad.extend_from_slice(&2u32.to_be_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        let err = decode_request(&bad).unwrap_err();
        assert!(err.contains("UTF-8"), "{err}");
        // Trailing garbage after a valid message.
        let mut enc = encode_request(&Request::Ping { id: 1 });
        enc.push(0);
        assert!(decode_request(&enc).unwrap_err().contains("trailing"));
    }

    #[test]
    fn huge_claimed_counts_are_rejected_before_allocating() {
        // A result frame claiming u32::MAX rows backed by no bytes.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes()); // id
        bad.push(ST_RESULT);
        bad.extend_from_slice(&0u64.to_be_bytes()); // epoch
        bad.extend_from_slice(&1u16.to_be_bytes()); // 1 column
                                                    // column name "c"
        bad.extend_from_slice(&1u32.to_be_bytes());
        bad.push(b'c');
        bad.extend_from_slice(&u32::MAX.to_be_bytes()); // nrows lie
        let err = decode_response(&bad).unwrap_err();
        assert!(err.contains("rows"), "{err}");

        // Same lie on the highlight count.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(ST_RESULT);
        bad.extend_from_slice(&0u64.to_be_bytes());
        bad.extend_from_slice(&0u16.to_be_bytes()); // 0 columns
        bad.extend_from_slice(&0u32.to_be_bytes()); // 0 rows
        bad.extend_from_slice(&u32::MAX.to_be_bytes()); // nhl lie
        let err = decode_response(&bad).unwrap_err();
        assert!(err.contains("highlights"), "{err}");

        // Column-count lie (u16::MAX columns, empty payload tail).
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(ST_RESULT);
        bad.extend_from_slice(&0u64.to_be_bytes());
        bad.extend_from_slice(&u16::MAX.to_be_bytes());
        let err = decode_response(&bad).unwrap_err();
        assert!(err.contains("columns"), "{err}");

        // Zero-column result claiming more rows than remaining bytes.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u64.to_be_bytes());
        bad.push(ST_RESULT);
        bad.extend_from_slice(&0u64.to_be_bytes());
        bad.extend_from_slice(&0u16.to_be_bytes());
        bad.extend_from_slice(&100u32.to_be_bytes()); // 100 rows, 4 bytes left
        bad.extend_from_slice(&0u32.to_be_bytes());
        let err = decode_response(&bad).unwrap_err();
        assert!(err.contains("rows"), "{err}");
    }

    #[test]
    fn zero_column_zero_row_result_roundtrips() {
        roundtrip_response(Response::Result {
            id: 11,
            epoch: 1,
            result: ResultSet {
                columns: vec![],
                rows: vec![],
                highlights: vec![],
            },
        });
    }

    #[test]
    fn peek_id_survives_garbage() {
        assert_eq!(peek_request_id(&[]), 0);
        assert_eq!(peek_request_id(&[1, 2]), 0);
        let enc = encode_request(&Request::Ping { id: 77 });
        assert_eq!(peek_request_id(&enc), 77);
    }

    #[test]
    fn decoder_reassembles_byte_at_a_time() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();

        let mut dec = FrameDecoder::new();
        let mut frames = Vec::new();
        for &b in &wire {
            dec.extend(&[b]);
            while let Some(f) = dec.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(
            frames,
            vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]
        );
        assert!(!dec.mid_frame());
    }

    #[test]
    fn decoder_yields_many_frames_from_one_chunk() {
        let mut wire = Vec::new();
        for i in 0..10u8 {
            write_frame(&mut wire, &[i; 3]).unwrap();
        }
        // Plus a partial header to leave the decoder mid-frame.
        wire.extend_from_slice(&[0, 0]);

        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        let mut n = 0;
        while let Some(f) = dec.next_frame().unwrap() {
            assert_eq!(f, vec![n as u8; 3]);
            n += 1;
        }
        assert_eq!(n, 10);
        assert!(dec.mid_frame());
    }

    #[test]
    fn decoder_poisons_on_oversized_header() {
        let mut dec = FrameDecoder::new();
        dec.extend(&0xdead_beefu32.to_be_bytes());
        dec.extend(b"whatever follows");
        assert_eq!(dec.next_frame().unwrap_err(), 0xdead_beef);
        assert!(dec.is_poisoned());
        // Stays poisoned: later (even valid) bytes yield nothing.
        let mut valid = Vec::new();
        write_frame(&mut valid, b"ok").unwrap();
        dec.extend(&valid);
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn decoder_accepts_exact_limit_frame() {
        let payload = vec![7u8; MAX_FRAME_LEN as usize];
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut dec = FrameDecoder::new();
        // Split the wire bytes at an awkward boundary inside the header.
        dec.extend(&wire[..3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        dec.extend(&wire[3..]);
        assert_eq!(dec.next_frame().unwrap().unwrap(), payload);
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let mut dec = FrameDecoder::new();
        let mut one = Vec::new();
        write_frame(&mut one, &[9u8; 100]).unwrap();
        for _ in 0..1000 {
            dec.extend(&one);
            assert_eq!(dec.next_frame().unwrap().unwrap(), vec![9u8; 100]);
        }
        // The internal buffer must not have accreted ~100 KB of history.
        assert!(
            dec.buf.len() < 16 * 1024,
            "buffer grew to {}",
            dec.buf.len()
        );
    }

    #[test]
    fn frame_roundtrip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = io::Cursor::new(buf);
        match read_frame(&mut cursor, &|| false) {
            FrameRead::Frame(p) => assert_eq!(p, b"hello"),
            other => panic!("{other:?}"),
        }
        match read_frame(&mut cursor, &|| false) {
            FrameRead::Eof => {}
            other => panic!("{other:?}"),
        }
        // Oversized header.
        let mut huge = io::Cursor::new(0xdead_beefu32.to_be_bytes().to_vec());
        match read_frame(&mut huge, &|| false) {
            FrameRead::TooLarge(n) => assert_eq!(n, 0xdead_beef),
            other => panic!("{other:?}"),
        }
        // Truncated payload.
        let mut trunc = Vec::new();
        trunc.extend_from_slice(&100u32.to_be_bytes());
        trunc.extend_from_slice(b"only a little");
        let mut cursor = io::Cursor::new(trunc);
        match read_frame(&mut cursor, &|| false) {
            FrameRead::Truncated => {}
            other => panic!("{other:?}"),
        }
    }
}
