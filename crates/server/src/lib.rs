//! A concurrent query service for PSQL over packed R-trees.
//!
//! The paper's front end (§2) is an interactive pictorial database
//! serving many users at once; this crate supplies the serving layer the
//! in-process engine lacks:
//!
//! * [`protocol`] — a length-prefixed binary wire protocol over TCP
//!   (request id + PSQL text in; typed result / typed error out), with
//!   defensive decoding: malformed input gets a typed `Protocol` error,
//!   never a panic.
//! * [`server`] — an event-driven connection core (one reactor thread
//!   multiplexing every connection over readiness notifications, with
//!   request pipelining) feeding a fixed worker-thread pool over a
//!   *bounded* request queue: per-request deadlines answered with
//!   `Timeout`, a full queue answered immediately with `Overloaded`
//!   (reject-with-retry backpressure), and graceful shutdown that
//!   drains in-flight queries.
//! * [`plan_cache`] — a bounded LRU cached-plan table keyed by query
//!   text: parse results are reused forever, compiled plans while their
//!   snapshot epoch still matches.
//! * [`snapshot`] — the shared database: an `Arc`-swapped immutable
//!   [`snapshot::DatabaseSnapshot`] readers pin lock-free while the
//!   admin path (re-PACK / load picture) builds a replacement off-line
//!   and publishes it atomically. Readers never block on writers and
//!   never observe a half-built tree.
//! * [`metrics`] — a zero-dependency registry (counters, queue-depth
//!   gauge, log₂ latency histograms) served by the protocol's `STATS`
//!   command.
//! * [`client`] — a small blocking client used by tests, the CI smoke
//!   script, and `rtree-bench`'s `server_load` load generator.
//!
//! # Quick start
//!
//! ```
//! use psql::database::PictorialDatabase;
//! use psql_server::client::Client;
//! use psql_server::server::{Server, ServerConfig};
//!
//! let server = Server::start(
//!     PictorialDatabase::with_us_map(),
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//! )
//! .unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let (epoch, result) = client
//!     .query_expect_result(
//!         "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
//!     )
//!     .unwrap();
//! assert_eq!(epoch, 1);
//! assert!(!result.is_empty());
//! server.stop();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Library code reports typed errors instead of panicking; unit tests
// (cfg(test)) may still unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod client;
pub mod metrics;
pub mod plan_cache;
pub mod protocol;
pub mod queue;
mod reactor;
pub mod server;
pub mod snapshot;

pub use client::{Client, ClientError};
pub use metrics::Metrics;
pub use protocol::{ErrorKind, Request, Response};
pub use server::{Server, ServerConfig};
pub use snapshot::{DatabaseSnapshot, SnapshotCache, SnapshotCell};
