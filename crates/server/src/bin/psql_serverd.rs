//! `psql-serverd` — the concurrent PSQL query service daemon.
//!
//! Serves the synthetic US-map pictorial database over the length-
//! prefixed TCP protocol (see `psql_server::protocol`).
//!
//! ```text
//! psql-serverd [--addr HOST:PORT] [--workers N] [--queue N]
//!              [--deadline-ms N] [--wal PATH] [--smoke]
//! ```
//!
//! `--wal PATH` makes dynamic inserts durable: each one is committed to
//! the write-ahead log at PATH before it is acknowledged, and a restart
//! on the same PATH replays acknowledged writes into the delta trees
//! (DESIGN.md §14).
//!
//! `--smoke` runs the CI smoke script instead of serving forever: it
//! starts the server on an ephemeral port, drives one scripted client
//! session (queries, a WAL-committed insert, a malformed frame, a forced
//! timeout, `STATS`), restarts on the same WAL to prove the insert
//! survives, then asks for graceful shutdown over the wire and waits for
//! the drain. Exit code 0 means every step behaved.

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::protocol::{ErrorKind, Response};
use psql_server::server::{Server, ServerConfig};
use rtree_geom::{Point, SpatialObject};
use std::time::Duration;

fn main() {
    let mut addr = "127.0.0.1:5433".to_owned();
    let mut config = ServerConfig::default();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} wants a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => config.workers = value("--workers").parse().expect("workers"),
            "--queue" => config.queue_capacity = value("--queue").parse().expect("queue"),
            "--deadline-ms" => {
                config.default_deadline =
                    Duration::from_millis(value("--deadline-ms").parse().expect("deadline-ms"));
            }
            "--wal" => config.wal_path = Some(value("--wal").into()),
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                println!(
                    "psql-serverd [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--deadline-ms N] [--wal PATH] [--smoke]"
                );
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    if smoke {
        run_smoke(config);
        return;
    }

    println!("loading us-map pictorial database …");
    let db = PictorialDatabase::with_us_map();
    let server = Server::start(db, &addr, config.clone()).expect("bind");
    println!(
        "psql-serverd listening on {} ({} workers, queue {}, default deadline {:?})",
        server.local_addr(),
        config.workers,
        config.queue_capacity,
        config.default_deadline
    );
    println!("send the protocol SHUTDOWN request to stop.");
    server.wait();
    println!("drained; bye.");
}

/// The scripted session CI runs: every assertion here is part of the
/// server's behavioural contract.
fn run_smoke(mut config: ServerConfig) {
    config.workers = config.workers.max(2);
    if config.wal_path.is_none() {
        config.wal_path = Some(
            std::env::temp_dir().join(format!("psql-serverd-smoke-{}.wal", std::process::id())),
        );
    }
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        config.clone(),
    )
    .expect("bind ephemeral");
    let addr = server.local_addr();
    println!("[smoke] server on {addr}");

    let timeout = Duration::from_secs(10);
    let mut c = Client::connect_timeout(addr, timeout).expect("connect");

    // 1. Liveness.
    c.ping().expect("ping");
    println!("[smoke] ping ok");

    // 2. A real spatial query.
    let (epoch, result) = c
        .query_expect_result(
            "select city, population from cities on us-map \
             at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 450000",
        )
        .expect("query");
    assert_eq!(epoch, 1, "first snapshot is epoch 1");
    assert!(result.len() >= 3, "eastern cities expected, got {result:?}");
    println!(
        "[smoke] spatial query ok ({} rows, epoch {epoch})",
        result.len()
    );

    // 3. A juxtaposition (geographic join).
    let (_, join) = c
        .query_expect_result(
            "select city, zone from cities, time-zones on us-map, time-zone-map \
             at cities.loc covered-by time-zones.loc",
        )
        .expect("join query");
    assert_eq!(join.len(), 42, "every city joins exactly one zone");
    println!("[smoke] juxtaposition ok (42 rows)");

    // 4. A dynamic insert: WAL-committed before the Done, buffered in
    // the delta tree while the frozen main tree keeps serving.
    let insert_epoch = c
        .insert_expect_done(
            "us-map",
            "smoke-pt",
            SpatialObject::Point(Point::new(50.0, 25.0)),
        )
        .expect("insert");
    assert!(insert_epoch >= 2, "insert must publish a new snapshot");
    println!("[smoke] durable insert ok (epoch {insert_epoch})");

    // 5. A PSQL error comes back typed, session survives.
    match c.query("select frobnicate from").expect("error roundtrip") {
        Response::Error { kind, .. } => {
            assert!(
                matches!(
                    kind,
                    ErrorKind::Parse | ErrorKind::Lex | ErrorKind::Semantic
                ),
                "unexpected kind {kind:?}"
            );
        }
        other => panic!("expected typed error, got {other:?}"),
    }
    println!("[smoke] typed PSQL error ok");

    // 6. A malformed payload (junk opcode) gets a Protocol error and the
    // session keeps working.
    let mut junk = Vec::new();
    junk.extend_from_slice(&9u32.to_be_bytes()); // frame length
    junk.extend_from_slice(&77u64.to_be_bytes()); // request id
    junk.push(200); // no such opcode
    c.send_raw(&junk).expect("send junk");
    match c.read_response().expect("junk answered") {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, 77);
            assert_eq!(kind, ErrorKind::Protocol);
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    c.ping().expect("session survived junk");
    println!("[smoke] malformed frame answered, session intact");

    // 7. Deadline enforcement: a query that sleeps past its budget.
    match c
        .query_with_timeout("#sleep 300 select city from cities", 50)
        .expect("timeout roundtrip")
    {
        Response::Timeout { .. } => {}
        other => panic!("expected timeout, got {other:?}"),
    }
    println!("[smoke] deadline timeout ok");

    // 8. Admin re-pack publishes a new snapshot …
    let epoch = c.repack().expect("repack");
    assert!(epoch >= 2);
    // … and queries now run against it.
    let (post_epoch, _) = c
        .query_expect_result("select zone from time-zones")
        .expect("post-repack query");
    assert_eq!(post_epoch, epoch);
    println!("[smoke] repack published epoch {epoch}");

    // 8b. Admin out-of-core external pack under a 4 MiB memory budget
    // with a 2-thread pipeline publishes another snapshot, and queries
    // answer against it with the same results the in-memory pack
    // produced (the packer is bit-identical at every thread count).
    let prev_epoch = epoch;
    let epoch = c.pack_external_with(4 << 20, 2).expect("pack external");
    assert!(epoch > prev_epoch, "external pack must publish: {epoch}");
    let (post_epoch, rows) = c
        .query_expect_result("select zone from time-zones")
        .expect("post-external-pack query");
    assert_eq!(post_epoch, epoch);
    assert!(!rows.rows.is_empty(), "externally packed picture answers");
    println!("[smoke] pack external published epoch {epoch}");

    // 9. STATS reflects the session, write path included.
    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"queries\":"), "{stats}");
    assert!(
        stats.contains(&format!("\"snapshot_epoch\":{epoch}")),
        "{stats}"
    );
    assert!(stats.contains("\"timeout\":1"), "{stats}");
    assert!(stats.contains("\"inserts\":1"), "{stats}");
    assert!(stats.contains("\"wal_appends\":1"), "{stats}");
    println!("[smoke] stats: {stats}");

    // 10. Graceful shutdown over the wire, then drain.
    c.shutdown_server().expect("shutdown");
    server.wait();
    println!("[smoke] clean shutdown");

    // 11. Restart on the same WAL: the acknowledged insert is replayed
    // into the delta tree of a fresh base database.
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        config.clone(),
    )
    .expect("rebind");
    let mut c = Client::connect_timeout(server.local_addr(), timeout).expect("reconnect");
    let stats = c.stats().expect("post-restart stats");
    assert!(stats.contains("\"wal_recovered\":1"), "{stats}");
    assert!(stats.contains("\"delta_items\":1"), "{stats}");
    c.shutdown_server().expect("second shutdown");
    server.wait();
    if let Some(path) = &config.wal_path {
        let _ = std::fs::remove_file(path);
    }
    println!("[smoke] restart replayed the WAL insert; all good");
}
