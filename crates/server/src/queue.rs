//! A bounded multi-producer/multi-consumer job queue with explicit
//! backpressure and drain-on-close semantics.
//!
//! Producers (connection readers) use the non-blocking
//! [`BoundedQueue::try_push`]: a full queue is an immediate
//! [`PushError::Full`], which the server turns into an `Overloaded`
//! response — load is shed at the door instead of building an unbounded
//! backlog. Consumers (workers) block in [`BoundedQueue::pop`];
//! [`BoundedQueue::close`] lets already-queued jobs drain (pops keep
//! succeeding) and wakes every worker once the queue is empty.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue is closed (server shutting down); the item is handed
    /// back.
    Closed(T),
}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; a full or closed queue refuses the
    /// item immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeues, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues up to `max` items into `out`, blocking only for the
    /// first one. Whatever else is *already* queued rides along (up to
    /// the cap) without waiting — batch formation never adds latency: a
    /// lone job departs alone, a backlog drains in packs. Returns the
    /// number of items appended; `0` means closed **and** drained, like
    /// [`pop`](Self::pop) returning `None`.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !state.items.is_empty() {
                let take = max.min(state.items.len());
                out.extend(state.items.drain(..take));
                return take;
            }
            if state.closed {
                return 0;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, queued items still drain,
    /// and idle consumers wake up to observe the close.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Current queue length (advisory).
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .items
            .len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_wakes() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        // Queued items still drain.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn pop_batch_drains_backlog_without_blocking() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        // The remainder comes in the next batch, even under a larger cap.
        assert_eq!(q.pop_batch(&mut out, 64), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_batch_lone_item_departs_alone() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.pop_batch(&mut out, 16);
            (n, out)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(7).unwrap();
        let (n, out) = h.join().unwrap();
        // The blocked worker takes what is there; it does not linger
        // hoping for a fuller batch.
        assert_eq!((n, out), (1, vec![7]));
    }

    #[test]
    fn pop_batch_observes_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        q.try_push(1).unwrap();
        q.close();
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 8), 1);
        assert_eq!(q.pop_batch(&mut out, 8), 0, "closed and drained");
        assert_eq!(q.pop_batch(&mut out, 0), 0, "zero cap never blocks");
    }

    #[test]
    fn many_producers_many_consumers() {
        let q: Arc<BoundedQueue<u64>> = Arc::new(BoundedQueue::new(8));
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(v) = q.pop() {
                    sum += v;
                }
                sum
            }));
        }
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    let v = p * 1000 + i;
                    loop {
                        match q.try_push(v) {
                            Ok(()) => break,
                            Err(PushError::Full(_)) => std::thread::yield_now(),
                            Err(PushError::Closed(_)) => panic!("closed early"),
                        }
                    }
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expected: u64 = (0..4u64)
            .flat_map(|p| (0..100u64).map(move |i| p * 1000 + i))
            .sum();
        assert_eq!(total, expected);
    }
}
