//! The readiness-driven I/O core: one event-loop thread owns the
//! listener and every connection, replacing the thread-per-socket model.
//!
//! ## Shape
//!
//! A single reactor thread runs an epoll loop (via the vendored `epoll`
//! shim) over:
//!
//! * the **listener** — accepted nonblockingly until `WouldBlock`, each
//!   connection taking a slot in a generation-tagged slab;
//! * every **connection** — readable events feed an incremental
//!   [`FrameDecoder`]; complete frames dispatch through the same
//!   `handle_frame` logic as before (control answered inline, queries
//!   and inserts enqueued on the bounded worker queue);
//! * a **waker eventfd** — workers finish jobs on their own threads and
//!   park encoded response frames in the connection's outbox, then poke
//!   the waker so the reactor flushes them.
//!
//! ## Pipelining and ordering
//!
//! A connection may have any number of requests in flight. Responses are
//! written back in *completion* order, not submission order — the
//! request id is the correlation. Each response frame is queued
//! atomically (the outbox holds whole frames), so frames never
//! interleave mid-frame even though many workers feed one connection.
//!
//! ## Backpressure and cleanup
//!
//! Writes go through a per-connection outbox drained by the reactor;
//! `WouldBlock` registers write interest and the flush resumes on the
//! next writable event, so one slow reader never blocks the loop or any
//! other connection. An outbox past `max_conn_backlog_bytes` marks the
//! connection dead (the client is not consuming; buffering forever
//! would be an OOM handed to whoever pipelines fastest). Closed
//! connections poison their outbox so late worker responses become
//! no-ops instead of writes to a recycled slot.

use crate::protocol::{encode_response, FrameDecoder, Response, MAX_FRAME_LEN};
use crate::server::{handle_frame, Shared};
use epoll::{Events, Interest, Poll, Waker};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token reserved for the waker eventfd.
const WAKER_TOKEN: u64 = u64::MAX;
/// Token reserved for the listener.
const LISTENER_TOKEN: u64 = u64::MAX - 1;

/// Most bytes read from one connection per readiness event. The socket
/// stays level-triggered, so a firehose connection re-fires on the next
/// wait instead of starving its neighbours.
const READ_FAIRNESS_BYTES: usize = 256 * 1024;
/// Target size of the coalesced write buffer refilled from the outbox.
const WRITE_COALESCE_BYTES: usize = 64 * 1024;
/// How long the final drain keeps flushing queued responses after the
/// workers have been joined, before closing connections regardless.
const DRAIN_GRACE: Duration = Duration::from_secs(3);

/// Cross-thread "this connection has responses to flush" channel:
/// workers push the connection's token and poke the eventfd; the reactor
/// drains the list on wake.
pub(crate) struct Notifier {
    pending: Mutex<Vec<u64>>,
    waker: Waker,
}

impl Notifier {
    pub(crate) fn new() -> io::Result<Notifier> {
        Ok(Notifier {
            pending: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    fn notify(&self, token: u64) {
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(token);
        self.waker.wake();
    }

    /// Wakes the reactor without a token — shutdown and drain phases.
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }

    fn drain(&self) -> Vec<u64> {
        std::mem::take(&mut *self.pending.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

struct Outbox {
    frames: VecDeque<Vec<u8>>,
    bytes: usize,
    /// Set when the connection closed (or overflowed): sends become
    /// no-ops so late worker responses can't write into a recycled slot.
    dead: bool,
}

/// The per-connection handle shared with workers: where responses go.
/// This replaces the old thread-per-session `Session` (a mutex over the
/// write half of the socket) — same `send` shape, but the actual socket
/// write happens on the reactor thread.
pub(crate) struct Session {
    token: u64,
    notifier: Arc<Notifier>,
    backlog_cap: usize,
    outbox: Mutex<Outbox>,
}

impl Session {
    /// Queues one response frame for the reactor to write. Atomic per
    /// frame; callable from any thread; never blocks on the socket.
    pub(crate) fn send(&self, resp: &Response) {
        let payload = encode_response(resp);
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&payload);
        {
            let mut ob = self.outbox.lock().unwrap_or_else(|e| e.into_inner());
            if ob.dead {
                return;
            }
            if ob.bytes + frame.len() > self.backlog_cap {
                // The client stopped reading; cut it loose rather than
                // buffer without bound. The reactor closes on flush.
                ob.dead = true;
                ob.frames.clear();
                ob.bytes = 0;
            } else {
                ob.bytes += frame.len();
                ob.frames.push_back(frame);
            }
        }
        self.notifier.notify(self.token);
    }
}

struct Conn {
    stream: TcpStream,
    token: u64,
    decoder: FrameDecoder,
    session: Arc<Session>,
    /// Coalesced write buffer (drained from `woff`), refilled from the
    /// session outbox.
    wbuf: Vec<u8>,
    woff: usize,
    /// Whether write interest is currently registered.
    want_write: bool,
    /// Flush whatever is queued, then close (shutdown acknowledged,
    /// unrecoverable input answered, or peer EOF).
    closing: bool,
}

impl Conn {
    fn has_unsent(&self) -> bool {
        self.woff < self.wbuf.len()
            || !self
                .session
                .outbox
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .frames
                .is_empty()
    }
}

enum Flush {
    Keep,
    Close,
}

/// Entry point of the reactor thread.
pub(crate) fn reactor_loop(listener: TcpListener, shared: &Arc<Shared>) {
    if let Err(e) = run(listener, shared) {
        eprintln!("[psql-server] reactor failed: {e}");
    }
    // Whatever happened, unblock Server::wait.
    shared.reader_stopped.store(true, Ordering::SeqCst);
}

fn run(listener: TcpListener, shared: &Arc<Shared>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    poll.register(shared.notifier.waker.fd(), WAKER_TOKEN, Interest::READABLE)?;
    poll.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;

    let mut listener = Some(listener);
    let mut slots: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_gen: u64 = 1;
    let mut events = Events::with_capacity(1024);
    let mut rbuf = vec![0u8; 16 * 1024];
    let mut draining = false;

    loop {
        if !draining && shared.shutting_down.load(Ordering::SeqCst) {
            // Stop accepting and stop interpreting new requests; keep
            // flushing responses for everything already queued.
            draining = true;
            if let Some(l) = listener.take() {
                let _ = poll.deregister(l.as_raw_fd());
            }
            shared.reader_stopped.store(true, Ordering::SeqCst);
        }
        if shared.workers_done.load(Ordering::SeqCst) {
            break;
        }

        poll.wait(&mut events, Some(Duration::from_millis(100)))?;
        let mut accept_ready = false;
        let mut touched: Vec<usize> = Vec::new();
        for ev in events.iter() {
            match ev.token {
                WAKER_TOKEN => shared.notifier.waker.drain(),
                LISTENER_TOKEN => accept_ready = true,
                token => {
                    let idx = (token & 0xffff_ffff) as usize;
                    let valid = slots
                        .get(idx)
                        .and_then(|s| s.as_ref())
                        .is_some_and(|c| c.token == token);
                    if !valid {
                        continue; // stale event for a recycled slot
                    }
                    if ev.is_error {
                        close_conn(&poll, &mut slots, &mut free, shared, idx);
                        continue;
                    }
                    if ev.readable {
                        let conn = slots[idx].as_mut().expect("validated above");
                        if let Flush::Close = on_readable(shared, conn, &mut rbuf, draining) {
                            close_conn(&poll, &mut slots, &mut free, shared, idx);
                            continue;
                        }
                    }
                    touched.push(idx);
                }
            }
        }
        if accept_ready {
            accept_all(
                &poll,
                listener.as_ref(),
                &mut slots,
                &mut free,
                &mut next_gen,
                shared,
            );
        }
        // Flush every connection a worker finished a response for, plus
        // every one that saw a readable/writable event this round
        // (inline control responses, continued partial writes).
        for token in shared.notifier.drain() {
            let idx = (token & 0xffff_ffff) as usize;
            let valid = slots
                .get(idx)
                .and_then(|s| s.as_ref())
                .is_some_and(|c| c.token == token);
            if valid {
                touched.push(idx);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            let Some(conn) = slots[idx].as_mut() else {
                continue;
            };
            if let Flush::Close = flush_conn(&poll, conn) {
                close_conn(&poll, &mut slots, &mut free, shared, idx);
            }
        }
    }

    // Workers are joined: every response that will ever exist is queued.
    // Flush with a grace period, then close everything.
    let deadline = Instant::now() + DRAIN_GRACE;
    loop {
        let mut unsent = false;
        for idx in 0..slots.len() {
            let Some(conn) = slots[idx].as_mut() else {
                continue;
            };
            if let Flush::Close = flush_conn(&poll, conn) {
                close_conn(&poll, &mut slots, &mut free, shared, idx);
                continue;
            }
            if slots[idx].as_ref().is_some_and(Conn::has_unsent) {
                unsent = true;
            }
        }
        if !unsent || Instant::now() > deadline {
            break;
        }
        poll.wait(&mut events, Some(Duration::from_millis(20)))?;
    }
    for idx in 0..slots.len() {
        close_conn(&poll, &mut slots, &mut free, shared, idx);
    }
    Ok(())
}

fn accept_all(
    poll: &Poll,
    listener: Option<&TcpListener>,
    slots: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_gen: &mut u64,
    shared: &Arc<Shared>,
) {
    let Some(listener) = listener else { return };
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // Transient per-connection failures (ECONNABORTED, fd
            // exhaustion): skip this one, keep serving.
            Err(_) => break,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let idx = free.pop().unwrap_or_else(|| {
            slots.push(None);
            slots.len() - 1
        });
        let token = (*next_gen << 32) | idx as u64;
        *next_gen += 1;
        if poll
            .register(stream.as_raw_fd(), token, Interest::READABLE)
            .is_err()
        {
            free.push(idx);
            continue;
        }
        let session = Arc::new(Session {
            token,
            notifier: Arc::clone(&shared.notifier),
            backlog_cap: shared.config.max_conn_backlog_bytes,
            outbox: Mutex::new(Outbox {
                frames: VecDeque::new(),
                bytes: 0,
                dead: false,
            }),
        });
        slots[idx] = Some(Conn {
            stream,
            token,
            decoder: FrameDecoder::new(),
            session,
            wbuf: Vec::new(),
            woff: 0,
            want_write: false,
            closing: false,
        });
        shared.metrics.connections_opened.incr();
    }
}

/// Reads until `WouldBlock` (or the fairness cap), feeding the decoder
/// and dispatching complete frames. During shutdown drain, bytes are
/// read and discarded — consuming readiness without interpreting new
/// requests.
fn on_readable(shared: &Arc<Shared>, conn: &mut Conn, rbuf: &mut [u8], draining: bool) -> Flush {
    let mut total = 0usize;
    loop {
        match conn.stream.read(rbuf) {
            Ok(0) => {
                // Peer EOF. Mid-frame it is a protocol violation; either
                // way, flush what is queued and close.
                if conn.decoder.mid_frame() {
                    shared.metrics.protocol_errors.incr();
                }
                conn.closing = true;
                return Flush::Keep;
            }
            Ok(n) => {
                if !draining && !conn.closing {
                    conn.decoder.extend(&rbuf[..n]);
                    loop {
                        match conn.decoder.next_frame() {
                            Ok(Some(payload)) => {
                                if !handle_frame(&payload, &conn.session, shared) {
                                    conn.closing = true;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(len) => {
                                // Unrecoverable framing: answer, then
                                // flush-and-close. Outbound framing is
                                // still intact.
                                shared.metrics.protocol_errors.incr();
                                conn.session.send(&Response::Error {
                                    id: 0,
                                    kind: crate::protocol::ErrorKind::Protocol,
                                    message: format!(
                                        "frame of {len} bytes exceeds limit {MAX_FRAME_LEN}; \
                                         closing connection"
                                    ),
                                });
                                conn.closing = true;
                                break;
                            }
                        }
                    }
                }
                total += n;
                if total >= READ_FAIRNESS_BYTES {
                    return Flush::Keep; // level-triggered: re-fires
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flush::Keep,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Close,
        }
    }
}

/// Writes as much of the outbox as the socket accepts. Registers write
/// interest on `WouldBlock`, drops it once drained, closes when a
/// `closing` connection runs dry (or the outbox was poisoned).
fn flush_conn(poll: &Poll, conn: &mut Conn) -> Flush {
    loop {
        if conn.woff == conn.wbuf.len() {
            conn.wbuf.clear();
            conn.woff = 0;
            {
                let mut ob = conn
                    .session
                    .outbox
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                if ob.dead {
                    return Flush::Close;
                }
                while let Some(front) = ob.frames.front() {
                    if !conn.wbuf.is_empty() && conn.wbuf.len() + front.len() > WRITE_COALESCE_BYTES
                    {
                        break;
                    }
                    let frame = ob.frames.pop_front().expect("front checked");
                    ob.bytes -= frame.len();
                    conn.wbuf.extend_from_slice(&frame);
                }
            }
            if conn.wbuf.is_empty() {
                if conn.closing {
                    return Flush::Close;
                }
                if conn.want_write {
                    conn.want_write = false;
                    let _ =
                        poll.reregister(conn.stream.as_raw_fd(), conn.token, Interest::READABLE);
                }
                return Flush::Keep;
            }
        }
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => return Flush::Close,
            Ok(n) => conn.woff += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !conn.want_write {
                    conn.want_write = true;
                    let _ = poll.reregister(conn.stream.as_raw_fd(), conn.token, Interest::BOTH);
                }
                return Flush::Keep;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Close,
        }
    }
}

fn close_conn(
    poll: &Poll,
    slots: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    shared: &Arc<Shared>,
    idx: usize,
) {
    let Some(conn) = slots[idx].take() else {
        return;
    };
    let _ = poll.deregister(conn.stream.as_raw_fd());
    {
        let mut ob = conn
            .session
            .outbox
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        ob.dead = true;
        ob.frames.clear();
        ob.bytes = 0;
    }
    free.push(idx);
    shared.metrics.connections_closed.incr();
}
