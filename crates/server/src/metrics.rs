//! Zero-dependency metrics registry for the query service.
//!
//! Plain atomics: counters, a gauge with a high-water mark, and
//! log₂-bucketed latency histograms. Everything is lock-free on the
//! record path and snapshot-consistent *enough* for operational use (the
//! `STATS` command reads each atomic independently; counts may be
//! momentarily skewed by in-flight requests, never torn).

use rtree_storage::BufferStats;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` — one atomic op for a whole batch of events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value. Used to mirror counters that are
    /// accumulated elsewhere (the buffer pool keeps its own cumulative
    /// totals; `STATS` just republishes the latest observation).
    pub fn store(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge that remembers its high-water mark — used for the
/// request-queue depth.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// Adds one, updating the high-water mark.
    pub fn inc(&self) {
        let now = self.value.fetch_add(1, Ordering::Relaxed) + 1;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Subtracts `n` — one atomic op when a whole batch leaves the queue.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever observed.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` counts samples with
/// `latency_µs < 2^i`, the last bucket is unbounded (≳ 34 minutes).
const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u64::MAX as u128) as u64;
        // Bucket index = position of the highest set bit + 1 (1µs lands
        // in bucket 1 `< 2`, 0µs in bucket 0), clamped to the last bucket.
        let idx = ((64 - micros.leading_zeros()) as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds.
    pub fn mean_micros(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_micros.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Upper bound (µs) of the bucket containing quantile `q ∈ [0, 1]`.
    /// Resolution is a factor of two — good enough to tell 100µs from
    /// 10ms, which is what operational percentiles are for.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }
}

/// The server's metrics registry, exposed via the `STATS` command.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections accepted since start.
    pub connections_opened: Counter,
    /// Connections that have ended (any reason).
    pub connections_closed: Counter,
    /// Query requests received.
    pub queries: Counter,
    /// Stats/ping/admin requests received.
    pub control_requests: Counter,
    /// Requests answered with a result.
    pub ok: Counter,
    /// Requests answered with a typed PSQL error.
    pub query_errors: Counter,
    /// Malformed frames / undecodable payloads answered with a protocol
    /// error.
    pub protocol_errors: Counter,
    /// Requests whose deadline expired.
    pub timeouts: Counter,
    /// Requests rejected with `Overloaded` because the queue was full.
    pub overloads: Counter,
    /// Worker panics contained and answered as internal errors.
    pub internal_errors: Counter,
    /// Snapshot publications since start.
    pub snapshots_published: Counter,
    /// Multi-query packs executed through the batched path (a pack of
    /// one query counts as single-query execution, not a batch).
    pub query_batches: Counter,
    /// Queries that rode in those packs.
    pub batched_queries: Counter,
    /// Request-queue depth (live) and high-water mark.
    pub queue_depth: Gauge,
    /// End-to-end latency of executed queries (µs buckets).
    pub query_latency: Histogram,
    /// Latency of admin operations (repack).
    pub admin_latency: Histogram,
    /// Dynamic inserts applied and acknowledged (`Done`).
    pub inserts: Counter,
    /// WAL records appended (one per acknowledged insert when a WAL is
    /// configured).
    pub wal_appends: Counter,
    /// WAL record payload bytes appended.
    pub wal_bytes: Counter,
    /// WAL group commits (one fsync per worker ingest batch).
    pub wal_syncs: Counter,
    /// WAL records replayed into delta trees at startup.
    pub wal_recovered: Counter,
    /// Objects currently buffered in delta trees — mirrored from the
    /// published snapshot when `STATS` is served.
    pub delta_items: Counter,
    /// Background merge publications (delta folded into a freshly packed
    /// + frozen main tree).
    pub merges: Counter,
    /// `1` while every packed picture still holds its frozen compilation
    /// (dynamic writes buffer in deltas instead of dropping the frozen
    /// arena) — mirrored from the published snapshot when `STATS` is
    /// served.
    pub serves_frozen_queries: Counter,
    /// Plan-cache probes that found a plan stamped with the executing
    /// epoch (parse *and* plan skipped).
    pub plan_cache_hits: Counter,
    /// Plan-cache probes that found the parsed AST but no epoch-valid
    /// plan (parse skipped, plan recompiled and restamped).
    pub plan_cache_parse_hits: Counter,
    /// Plan-cache probes that found nothing.
    pub plan_cache_misses: Counter,
    /// Entries evicted by LRU pressure.
    pub plan_cache_evictions: Counter,
    /// Wholesale plan invalidations (`REPACK` / `PACK EXTERNAL`
    /// rebuilding the physical trees).
    pub plan_cache_invalidations: Counter,
    /// Entries currently cached — mirrored when `STATS` is served.
    pub plan_cache_entries: Counter,
    /// Buffer-pool page requests served from memory.
    pub buffer_hits: Counter,
    /// Buffer-pool page requests that required a disk read.
    pub buffer_misses: Counter,
    /// Buffer-pool frames evicted to make room.
    pub buffer_evictions: Counter,
    /// Buffer-pool dirty frames written back.
    pub buffer_writebacks: Counter,
}

impl Metrics {
    /// Mirrors a [`BufferStats`] observation into the registry. The
    /// pool's totals are cumulative, so each observation overwrites the
    /// previous one.
    pub fn observe_buffer_stats(&self, stats: &BufferStats) {
        self.buffer_hits.store(stats.hits);
        self.buffer_misses.store(stats.misses);
        self.buffer_evictions.store(stats.evictions);
        self.buffer_writebacks.store(stats.writebacks);
    }

    /// Renders the registry as a JSON object (the `STATS` payload).
    pub fn to_json(&self, snapshot_epoch: u64, queue_capacity: usize, workers: usize) -> String {
        let q = &self.query_latency;
        let a = &self.admin_latency;
        format!(
            concat!(
                "{{",
                "\"workers\":{},",
                "\"queue_capacity\":{},",
                "\"snapshot_epoch\":{},",
                "\"connections\":{{\"opened\":{},\"closed\":{}}},",
                "\"requests\":{{\"queries\":{},\"control\":{}}},",
                "\"responses\":{{\"ok\":{},\"query_error\":{},\"protocol_error\":{},",
                "\"timeout\":{},\"overloaded\":{},\"internal_error\":{}}},",
                "\"snapshots_published\":{},",
                "\"batching\":{{\"batches\":{},\"batched_queries\":{}}},",
                "\"queue\":{{\"depth\":{},\"high_water\":{}}},",
                "\"query_latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{}}},",
                "\"admin_latency_us\":{{\"count\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{}}},",
                "\"write_path\":{{\"inserts\":{},\"wal_appends\":{},\"wal_bytes\":{},",
                "\"wal_syncs\":{},\"wal_recovered\":{},\"delta_items\":{},\"merges\":{},",
                "\"serves_frozen_queries\":{}}},",
                "\"plan_cache\":{{\"hits\":{},\"parse_hits\":{},\"misses\":{},",
                "\"evictions\":{},\"invalidations\":{},\"entries\":{}}},",
                "\"buffer_pool\":{{\"hits\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{}}}",
                "}}"
            ),
            workers,
            queue_capacity,
            snapshot_epoch,
            self.connections_opened.get(),
            self.connections_closed.get(),
            self.queries.get(),
            self.control_requests.get(),
            self.ok.get(),
            self.query_errors.get(),
            self.protocol_errors.get(),
            self.timeouts.get(),
            self.overloads.get(),
            self.internal_errors.get(),
            self.snapshots_published.get(),
            self.query_batches.get(),
            self.batched_queries.get(),
            self.queue_depth.get(),
            self.queue_depth.high_water(),
            q.count(),
            q.mean_micros(),
            q.quantile_micros(0.50),
            q.quantile_micros(0.90),
            q.quantile_micros(0.99),
            a.count(),
            a.mean_micros(),
            a.quantile_micros(0.50),
            a.quantile_micros(0.99),
            self.inserts.get(),
            self.wal_appends.get(),
            self.wal_bytes.get(),
            self.wal_syncs.get(),
            self.wal_recovered.get(),
            self.delta_items.get(),
            self.merges.get(),
            self.serves_frozen_queries.get() != 0,
            self.plan_cache_hits.get(),
            self.plan_cache_parse_hits.get(),
            self.plan_cache_misses.get(),
            self.plan_cache_evictions.get(),
            self.plan_cache_invalidations.get(),
            self.plan_cache_entries.get(),
            self.buffer_hits.get(),
            self.buffer_misses.get(),
            self.buffer_evictions.get(),
            self.buffer_writebacks.get(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // bucket < 128
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10)); // 10_000µs, bucket < 16384
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_micros(0.5), 127);
        assert_eq!(h.quantile_micros(0.90), 127);
        assert_eq!(h.quantile_micros(0.99), 16383);
        assert!(h.mean_micros() > 100.0 && h.mean_micros() < 10_000.0);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0.0);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        g.inc();
        assert_eq!(g.get(), 2);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn buffer_pool_counters_move_under_paged_workload() {
        use rtree_geom::{Point, Rect};
        use rtree_index::{ItemId, RTreeConfig, SearchStats};
        use rtree_storage::{PagedRTree, Pager};

        // A pool smaller than the tree forces misses and evictions;
        // inserts dirty pages, so writebacks follow.
        let pager = Pager::temp().expect("temp pager");
        let mut tree = PagedRTree::create(&pager, RTreeConfig::PAPER, 4).expect("create");
        for i in 0..300u64 {
            let x = (i * 37 % 211) as f64;
            let y = (i * 53 % 197) as f64;
            tree.insert(Rect::from_point(Point::new(x, y)), ItemId(i))
                .expect("insert");
        }
        let mut stats = SearchStats::default();
        tree.search_within(&Rect::new(0.0, 0.0, 211.0, 197.0), &mut stats)
            .expect("search");

        let m = Metrics::default();
        m.observe_buffer_stats(&tree.pool_stats());
        assert!(m.buffer_hits.get() > 0, "no buffer hits recorded");
        assert!(m.buffer_misses.get() > 0, "no buffer misses recorded");
        assert!(m.buffer_evictions.get() > 0, "no evictions recorded");
        assert!(m.buffer_writebacks.get() > 0, "no writebacks recorded");
        let json = m.to_json(0, 64, 4);
        assert!(json.contains("\"buffer_pool\":{\"hits\":"));
        assert!(json.contains("\"evictions\":"));
    }

    #[test]
    fn stats_json_is_parsable_shape() {
        let m = Metrics::default();
        m.queries.incr();
        m.ok.incr();
        m.query_latency.record(Duration::from_micros(500));
        m.query_batches.incr();
        m.batched_queries.add(5);
        let json = m.to_json(3, 64, 4);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"snapshot_epoch\":3"));
        assert!(json.contains("\"queries\":1"));
        assert!(json.contains("\"batching\":{\"batches\":1,\"batched_queries\":5}"));
        assert!(json.contains("\"p99\":"));
        // Write-path section renders, with the frozen flag as a bool.
        assert!(json.contains("\"write_path\":{\"inserts\":0"));
        assert!(json.contains("\"serves_frozen_queries\":false"));
        m.serves_frozen_queries.store(1);
        m.inserts.add(7);
        m.wal_bytes.add(321);
        let json = m.to_json(3, 64, 4);
        assert!(json.contains("\"serves_frozen_queries\":true"));
        assert!(json.contains("\"inserts\":7"));
        assert!(json.contains("\"wal_bytes\":321"));
        // Plan-cache section renders.
        m.plan_cache_hits.add(9);
        m.plan_cache_entries.store(2);
        let json = m.to_json(3, 64, 4);
        assert!(json.contains("\"plan_cache\":{\"hits\":9,"));
        assert!(json.contains("\"entries\":2"));
        // Balanced braces (cheap well-formedness check without a JSON dep).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
