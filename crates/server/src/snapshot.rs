//! Snapshot-isolated sharing of the pictorial database.
//!
//! Readers (query workers) and writers (the admin path: re-PACK, load
//! picture) never contend on the database itself. The database lives
//! inside an immutable, epoch-stamped [`DatabaseSnapshot`] behind an
//! [`Arc`]; publication replaces the whole `Arc` at once, so a query
//! either sees the old database or the new one — never a half-built tree.
//!
//! The read hot path is lock-free: each worker keeps a [`SnapshotCache`]
//! (its own pinned `Arc`) and revalidates it against a single atomic
//! epoch counter per request. Only when the epoch has actually advanced
//! does the worker touch the publication mutex, and writers hold that
//! mutex *only for the pointer swap* — snapshot construction (deep
//! clone + re-pack) happens entirely outside it. Old snapshots are
//! freed by reference counting once the last in-flight query drops its
//! pin.

use psql::database::PictorialDatabase;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, epoch-stamped view of the whole pictorial database.
#[derive(Debug)]
pub struct DatabaseSnapshot {
    /// Publication epoch: 1 for the snapshot the server started with,
    /// +1 for every publication since.
    pub epoch: u64,
    /// The database (pictures + packed R-trees + relations). Immutable:
    /// there is deliberately no way to get `&mut` through a snapshot.
    pub db: PictorialDatabase,
}

/// The publication point: one atomically-swapped current snapshot.
#[derive(Debug)]
pub struct SnapshotCell {
    /// Epoch of the snapshot in `slot`, readable without the lock. A
    /// reader whose cached epoch matches skips the mutex entirely.
    epoch: AtomicU64,
    slot: Mutex<Arc<DatabaseSnapshot>>,
}

impl SnapshotCell {
    /// Wraps the initial database as epoch-1.
    pub fn new(db: PictorialDatabase) -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(1),
            slot: Mutex::new(Arc::new(DatabaseSnapshot { epoch: 1, db })),
        }
    }

    /// Epoch of the currently-published snapshot.
    pub fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pins the current snapshot (slow path: takes the publication lock
    /// for the duration of an `Arc::clone`). Use [`Self::load_cached`]
    /// from request loops.
    pub fn load(&self) -> Arc<DatabaseSnapshot> {
        Arc::clone(&self.slot.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Pins the current snapshot through a per-thread cache. When the
    /// published epoch matches the cache this is one atomic load and an
    /// `Arc::clone` — no lock, no waiting on writers. The cache is
    /// refreshed (via the lock) only after an actual republication.
    pub fn load_cached(&self, cache: &mut SnapshotCache) -> Arc<DatabaseSnapshot> {
        let current = self.epoch.load(Ordering::Acquire);
        match &cache.pinned {
            Some(snap) if snap.epoch == current => Arc::clone(snap),
            _ => {
                let snap = self.load();
                cache.pinned = Some(Arc::clone(&snap));
                snap
            }
        }
    }

    /// Publishes `db` as the next snapshot and returns its epoch. The
    /// lock is held only for the swap itself.
    pub fn publish(&self, db: PictorialDatabase) -> u64 {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let epoch = slot.epoch + 1;
        *slot = Arc::new(DatabaseSnapshot { epoch, db });
        // Release-store after the slot holds the new snapshot: a reader
        // that observes the bumped epoch and then takes the lock is
        // guaranteed to find a snapshot at least this new.
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// The admin path's read-modify-publish: deep-clones the current
    /// database, applies `mutate` to the clone *outside any lock*, then
    /// publishes the result. Concurrent readers keep serving from the
    /// old snapshot throughout.
    ///
    /// Concurrent `update`s serialize only at the final swap; the last
    /// publication wins (admin operations are expected to be rare and
    /// externally coordinated).
    pub fn update(&self, mutate: impl FnOnce(&mut PictorialDatabase)) -> u64 {
        let base = self.load();
        let mut db = base.db.clone();
        drop(base); // release the pin before the (possibly long) mutation
        mutate(&mut db);
        self.publish(db)
    }
}

/// A worker thread's pinned snapshot. Deliberately not `Sync`-shared:
/// each thread owns one.
#[derive(Debug, Default)]
pub struct SnapshotCache {
    pinned: Option<Arc<DatabaseSnapshot>>,
}

impl SnapshotCache {
    /// An empty cache; the first `load_cached` fills it.
    pub fn new() -> Self {
        SnapshotCache::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Rect;
    use rtree_index::RTreeConfig;

    fn tiny_db() -> PictorialDatabase {
        let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
        db.create_picture("p", Rect::new(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        db
    }

    #[test]
    fn epochs_advance_and_cache_revalidates() {
        let cell = SnapshotCell::new(tiny_db());
        let mut cache = SnapshotCache::new();
        let s1 = cell.load_cached(&mut cache);
        assert_eq!(s1.epoch, 1);
        // Cache hit: same Arc.
        let s1b = cell.load_cached(&mut cache);
        assert!(Arc::ptr_eq(&s1, &s1b));

        let e2 = cell.update(|db| {
            db.create_picture("q", Rect::new(0.0, 0.0, 1.0, 1.0))
                .unwrap();
        });
        assert_eq!(e2, 2);
        assert_eq!(cell.current_epoch(), 2);
        let s2 = cell.load_cached(&mut cache);
        assert_eq!(s2.epoch, 2);
        assert!(s2.db.picture("q").is_ok());
        // The old pin still serves the old view.
        assert!(s1.db.picture("q").is_err());
    }

    #[test]
    fn update_mutates_a_clone_not_the_published_snapshot() {
        let cell = SnapshotCell::new(tiny_db());
        let before = cell.load();
        cell.update(|db| {
            db.create_picture("added", Rect::new(0.0, 0.0, 1.0, 1.0))
                .unwrap();
        });
        assert!(before.db.picture("added").is_err(), "old snapshot mutated");
        assert!(cell.load().db.picture("added").is_ok());
    }

    #[test]
    fn concurrent_readers_see_only_whole_snapshots() {
        use std::sync::atomic::AtomicBool;
        let cell = Arc::new(SnapshotCell::new(tiny_db()));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut cache = SnapshotCache::new();
                let mut observed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = cell.load_cached(&mut cache);
                    // Each published epoch k has pictures p, e2..ek —
                    // i.e. exactly `epoch` pictures. A torn snapshot
                    // would break this invariant.
                    let mut count = 0;
                    for i in 2..=snap.epoch {
                        if snap.db.picture(&format!("e{i}")).is_ok() {
                            count += 1;
                        }
                    }
                    assert_eq!(count, snap.epoch - 1, "torn snapshot");
                    observed = observed.max(snap.epoch);
                }
                observed
            }));
        }
        for i in 2..=20u64 {
            let got = cell.update(|db| {
                db.create_picture(&format!("e{i}"), Rect::new(0.0, 0.0, 1.0, 1.0))
                    .unwrap();
            });
            assert_eq!(got, i);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.current_epoch(), 20);
    }
}
