//! A small blocking client for the wire protocol — used by the load
//! generator, the CI smoke script, and the integration tests.

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameRead, Request, Response,
};
use psql::ResultSet;
use rtree_geom::SpatialObject;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Read timeout applied by [`Client::connect`]. A server that accepts
/// the connection and then never answers must surface as a timeout
/// error, not a client that hangs forever — generous enough for any
/// legitimate query, finite so nothing wedges.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent something undecodable, or closed mid-frame.
    Wire(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Wire(m) => write!(f, "wire error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking protocol client over one TCP connection.
///
/// Issues one request at a time and matches the response id against the
/// request id (the protocol itself allows pipelining; this client keeps
/// things simple).
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    read_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a server, applying [`DEFAULT_READ_TIMEOUT`] to
    /// responses (override with
    /// [`set_read_timeout`](Self::set_read_timeout)).
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::finish(stream, DEFAULT_READ_TIMEOUT)
    }

    /// Connects with an explicit connect + read timeout.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Client::finish(stream, timeout)
    }

    fn finish(stream: TcpStream, timeout: Duration) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        Ok(Client {
            stream,
            next_id: 1,
            read_timeout: Some(timeout),
        })
    }

    /// Changes the per-response read timeout (`None` waits forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// The per-response read timeout in force.
    pub fn read_timeout(&self) -> Option<Duration> {
        self.read_timeout
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        let payload = encode_request(req);
        write_frame(&mut self.stream, &payload)?;
        self.read_response()
    }

    /// Reads one response frame, honoring the read timeout as a
    /// per-response deadline: the socket's timeout wakes the read, and
    /// the deadline predicate turns the wake into a hard stop (without
    /// it, each timeout tick would just re-poll forever).
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let stop = move || deadline.is_some_and(|d| Instant::now() >= d);
        match read_frame(&mut self.stream, &stop) {
            FrameRead::Frame(payload) => decode_response(&payload).map_err(ClientError::Wire),
            FrameRead::Eof => Err(ClientError::Wire("server closed the connection".into())),
            FrameRead::Truncated => Err(ClientError::Wire("truncated response frame".into())),
            FrameRead::TooLarge(n) => Err(ClientError::Wire(format!("oversized response ({n})"))),
            FrameRead::Stopped => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for a response",
            ))),
            FrameRead::Io(e) => Err(ClientError::Io(e)),
        }
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Executes a PSQL query with the server's default deadline.
    pub fn query(&mut self, text: &str) -> Result<Response, ClientError> {
        self.query_with_timeout(text, 0)
    }

    /// Executes a PSQL query with an explicit deadline in milliseconds
    /// (`0` = server default).
    pub fn query_with_timeout(
        &mut self,
        text: &str,
        timeout_ms: u32,
    ) -> Result<Response, ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::Query {
            id,
            timeout_ms,
            text: text.to_owned(),
        })?;
        self.expect_id(id, resp)
    }

    /// Sends a query *without* waiting for the response and returns its
    /// request id. Pipelining lets a backlog form on the server, which
    /// the worker pool then dequeues and executes as one batch; collect
    /// the responses with [`read_response`](Self::read_response) and
    /// match them to ids (they may arrive in any order).
    pub fn send_query(&mut self, text: &str) -> Result<u64, ClientError> {
        self.send_query_with_timeout(text, 0)
    }

    /// [`send_query`](Self::send_query) with an explicit per-request
    /// deadline in milliseconds (`0` = server default).
    pub fn send_query_with_timeout(
        &mut self,
        text: &str,
        timeout_ms: u32,
    ) -> Result<u64, ClientError> {
        let id = self.take_id();
        let payload = encode_request(&Request::Query {
            id,
            timeout_ms,
            text: text.to_owned(),
        });
        write_frame(&mut self.stream, &payload)?;
        Ok(id)
    }

    /// Executes a query and insists on a result set (any other response
    /// becomes a `Wire` error) — the convenient form for tests/tools.
    pub fn query_expect_result(&mut self, text: &str) -> Result<(u64, ResultSet), ClientError> {
        match self.query(text)? {
            Response::Result { epoch, result, .. } => Ok((epoch, result)),
            other => Err(ClientError::Wire(format!("expected result, got {other:?}"))),
        }
    }

    /// Inserts one object into a picture and returns the raw response
    /// (`Done` on success; `Error`, `Timeout`, or `Overloaded` when the
    /// server declines).
    pub fn insert(
        &mut self,
        picture: &str,
        label: &str,
        object: SpatialObject,
    ) -> Result<Response, ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::Insert {
            id,
            picture: picture.to_owned(),
            label: label.to_owned(),
            object,
        })?;
        self.expect_id(id, resp)
    }

    /// [`insert`](Self::insert), insisting on acknowledgement; returns
    /// the snapshot epoch carrying the write.
    pub fn insert_expect_done(
        &mut self,
        picture: &str,
        label: &str,
        object: SpatialObject,
    ) -> Result<u64, ClientError> {
        match self.insert(picture, label, object)? {
            Response::Done { epoch, .. } => Ok(epoch),
            other => Err(ClientError::Wire(format!("expected done, got {other:?}"))),
        }
    }

    /// Sends an insert *without* waiting for the response and returns
    /// its request id — lets a backlog form so the worker pool group-
    /// commits the pack under one fsync.
    pub fn send_insert(
        &mut self,
        picture: &str,
        label: &str,
        object: SpatialObject,
    ) -> Result<u64, ClientError> {
        let id = self.take_id();
        let payload = encode_request(&Request::Insert {
            id,
            picture: picture.to_owned(),
            label: label.to_owned(),
            object,
        });
        write_frame(&mut self.stream, &payload)?;
        Ok(id)
    }

    /// Fetches the metrics registry as JSON.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::Stats { id })?;
        match self.expect_id(id, resp)? {
            Response::Stats { json, .. } => Ok(json),
            other => Err(ClientError::Wire(format!("expected stats, got {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::Ping { id })?;
        match self.expect_id(id, resp)? {
            Response::Pong { .. } => Ok(()),
            other => Err(ClientError::Wire(format!("expected pong, got {other:?}"))),
        }
    }

    /// Admin: re-pack every picture and publish a new snapshot. Returns
    /// the new epoch.
    pub fn repack(&mut self) -> Result<u64, ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::Repack { id })?;
        match self.expect_id(id, resp)? {
            Response::Done { epoch, .. } => Ok(epoch),
            other => Err(ClientError::Wire(format!("expected done, got {other:?}"))),
        }
    }

    /// Admin: rebuild every picture's packed R-tree with the out-of-core
    /// external packer under the given memory budget and publish a new
    /// snapshot, with the packer's default pipeline thread count.
    /// Returns the new epoch.
    pub fn pack_external(&mut self, budget_bytes: u64) -> Result<u64, ClientError> {
        self.pack_external_with(budget_bytes, 0)
    }

    /// Admin: like [`pack_external`](Self::pack_external), but with an
    /// explicit packer pipeline thread count (0 = machine default). The
    /// resulting trees are bit-identical at every thread count.
    pub fn pack_external_with(
        &mut self,
        budget_bytes: u64,
        threads: u32,
    ) -> Result<u64, ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::PackExternal {
            id,
            budget_bytes,
            threads,
        })?;
        match self.expect_id(id, resp)? {
            Response::Done { epoch, .. } => Ok(epoch),
            other => Err(ClientError::Wire(format!("expected done, got {other:?}"))),
        }
    }

    /// Admin: ask the server to shut down gracefully.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let id = self.take_id();
        let resp = self.roundtrip(&Request::Shutdown { id })?;
        match self.expect_id(id, resp)? {
            Response::Done { .. } => Ok(()),
            other => Err(ClientError::Wire(format!("expected done, got {other:?}"))),
        }
    }

    fn expect_id(&self, id: u64, resp: Response) -> Result<Response, ClientError> {
        let got = match &resp {
            Response::Result { id, .. }
            | Response::Error { id, .. }
            | Response::Timeout { id }
            | Response::Overloaded { id, .. }
            | Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::Done { id, .. } => *id,
        };
        // id 0 marks an error for a request the server could not parse.
        if got != id && got != 0 {
            return Err(ClientError::Wire(format!(
                "response id {got} does not match request id {id}"
            )));
        }
        Ok(resp)
    }

    /// Writes raw bytes on the wire — the malformed-input tests speak
    /// through this.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn connect_applies_a_default_read_timeout() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = Client::connect(listener.local_addr().unwrap()).unwrap();
        assert_eq!(client.read_timeout(), Some(DEFAULT_READ_TIMEOUT));
    }

    #[test]
    fn silent_server_times_out_instead_of_hanging() {
        // A "server" that accepts the connection and never replies: every
        // roundtrip must come back as a timeout error, bounded in time.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(120)))
            .unwrap();
        let started = Instant::now();
        let err = client.ping().expect_err("silent server must not succeed");
        assert!(
            matches!(&err, ClientError::Io(e) if e.kind() == io::ErrorKind::TimedOut),
            "expected a timeout, got {err:?}"
        );
        let waited = started.elapsed();
        assert!(
            waited >= Duration::from_millis(100) && waited < Duration::from_secs(5),
            "timeout fired after {waited:?}"
        );
        drop(hold.join());
    }
}
