//! Snapshot-swap consistency: reader threads issue queries in a loop
//! while the admin path republishes snapshots. Every response must be
//! internally consistent with the epoch it is stamped with — no query
//! may observe a half-built tree or a half-applied mutation.
//!
//! The trick that makes this checkable: each publish adds exactly one
//! city (object + tuple, then a full re-PACK), so a snapshot at epoch
//! `e` contains exactly `41 + e` cities. Two independent views of that
//! count — a whole-frame spatial search and a juxtaposition join against
//! the (unchanged) time-zone map — must both agree with the epoch of
//! the response that carried them.

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::server::{Server, ServerConfig};
use rtree_geom::{Point, SpatialObject};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cities in a snapshot of epoch `e`: 42 in the seed (epoch 1), plus one
/// per publish after that.
fn expected_cities(epoch: u64) -> usize {
    41 + epoch as usize
}

const PUBLISHES: u64 = 20;
const READERS: usize = 6;

#[test]
fn readers_never_observe_a_torn_snapshot() {
    let config = ServerConfig {
        workers: 4,
        queue_capacity: 256,
        ..ServerConfig::default()
    };
    let server =
        Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut c =
                    Client::connect_timeout(addr, Duration::from_secs(30)).expect("connect");
                let mut checked = 0u64;
                let mut epochs_seen = std::collections::BTreeSet::new();
                while !done.load(Ordering::Relaxed) || checked == 0 {
                    // View 1: whole-frame spatial search over the mutated
                    // picture.
                    let (epoch, rows) = c
                        .query_expect_result(
                            "select city from cities on us-map \
                             at loc covered-by {50 +- 50, 25 +- 25}",
                        )
                        .expect("spatial query");
                    assert_eq!(
                        rows.len(),
                        expected_cities(epoch),
                        "reader {r}: spatial count torn at epoch {epoch}"
                    );
                    // View 2: juxtaposition against the untouched
                    // time-zone map — every city joins exactly one band.
                    let (epoch, rows) = c
                        .query_expect_result(
                            "select city, zone from cities, time-zones \
                             on us-map, time-zone-map \
                             at cities.loc covered-by time-zones.loc",
                        )
                        .expect("join query");
                    assert_eq!(
                        rows.len(),
                        expected_cities(epoch),
                        "reader {r}: join count torn at epoch {epoch}"
                    );
                    epochs_seen.insert(epoch);
                    checked += 1;
                }
                (checked, epochs_seen)
            })
        })
        .collect();

    // Admin path: clone → mutate → re-PACK → publish, concurrently with
    // the readers above.
    for k in 1..=PUBLISHES {
        let epoch = server.snapshots().update(|db| {
            // Strictly inside the Central time-zone band [42, 62].
            let p = Point::new(50.0 + 0.05 * k as f64, 25.0);
            let obj = db
                .add_object("us-map", SpatialObject::Point(p), &format!("New-{k}"))
                .expect("picture exists");
            db.insert(
                "cities",
                vec![
                    format!("New-{k}").as_str().into(),
                    "XX".into(),
                    (100_000 + k as i64).into(),
                    pictorial_relational::Value::Pointer(obj),
                ],
            )
            .expect("valid tuple");
            db.pack_all();
        });
        assert_eq!(epoch, 1 + k, "publishes are strictly ordered");
        // Give readers a chance to actually run against this epoch.
        std::thread::sleep(Duration::from_millis(10));
    }
    done.store(true, Ordering::Relaxed);

    let mut total = 0;
    let mut epochs = std::collections::BTreeSet::new();
    for h in readers {
        let (checked, seen) = h.join().expect("reader panicked");
        total += checked;
        epochs.extend(seen);
    }
    // The run only proves something if readers genuinely interleaved
    // with publishes.
    assert!(total >= 20, "readers only completed {total} iterations");
    assert!(
        epochs.len() >= 2,
        "readers saw a single epoch {epochs:?}; no interleaving happened"
    );
    assert_eq!(
        server.snapshots().current_epoch(),
        1 + PUBLISHES,
        "final epoch"
    );
    server.stop();
}

#[test]
fn publish_is_atomic_for_single_client() {
    // Sequential sanity companion to the racy test above: one client,
    // alternating query/publish, must see epochs and counts advance in
    // lock step.
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let mut c =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(10)).expect("connect");
    for k in 1..=5u64 {
        let (epoch, rows) = c
            .query_expect_result(
                "select city from cities on us-map at loc covered-by {50 +- 50, 25 +- 25}",
            )
            .expect("query");
        assert_eq!(epoch, k);
        assert_eq!(rows.len(), expected_cities(epoch));
        let published = server.snapshots().update(|db| {
            let p = Point::new(49.0 - 0.05 * k as f64, 24.0);
            let obj = db
                .add_object("us-map", SpatialObject::Point(p), &format!("Seq-{k}"))
                .expect("picture exists");
            db.insert(
                "cities",
                vec![
                    format!("Seq-{k}").as_str().into(),
                    "XX".into(),
                    (200_000 + k as i64).into(),
                    pictorial_relational::Value::Pointer(obj),
                ],
            )
            .expect("valid tuple");
            db.pack_all();
        });
        assert_eq!(published, k + 1);
    }
    server.stop();
}
