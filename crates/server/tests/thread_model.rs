//! The thread-model contract of the event-driven core: connections are
//! slab entries on the reactor, not threads. Opening many connections
//! must not grow the process thread count at all — the regression this
//! guards against is the old thread-per-connection accept loop (and its
//! leaked `JoinHandle`s).

#![cfg(target_os = "linux")]

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::server::{Server, ServerConfig};
use std::time::Duration;

/// Reads the live thread count from `/proc/self/status`.
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count")
}

#[test]
fn connections_do_not_spawn_threads() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Baseline after the server's fixed complement is up (reactor +
    // admin + merge + workers).
    let baseline = thread_count();

    // 64 live connections, each proven active with a ping.
    let mut clients: Vec<Client> = (0..64)
        .map(|_| Client::connect_timeout(addr, Duration::from_secs(30)).expect("connect"))
        .collect();
    for c in &mut clients {
        c.ping().expect("ping");
    }

    let with_connections = thread_count();
    assert_eq!(
        with_connections, baseline,
        "64 connections changed the thread count ({baseline} -> {with_connections}): \
         connections must be reactor slab entries, not threads"
    );

    // And closing them leaks nothing either (the old accept loop kept a
    // JoinHandle per connection forever).
    drop(clients);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if thread_count() == baseline {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "thread count did not settle back to {baseline}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stop();
}
