//! Malformed-input hardening: truncated frames, junk bytes, and invalid
//! UTF-8 must come back as typed protocol errors — never a panic, and
//! never collateral damage to other sessions.

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::protocol::{encode_request, ErrorKind, Request, Response};
use psql_server::server::{Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn start_server() -> Server {
    Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind")
}

fn connect(server: &Server) -> Client {
    Client::connect_timeout(server.local_addr(), Duration::from_secs(10)).expect("connect")
}

#[test]
fn truncated_frame_then_disconnect_leaves_server_healthy() {
    let server = start_server();
    // A bystander session that must stay unaffected throughout.
    let mut bystander = connect(&server);
    bystander.ping().expect("bystander alive");

    {
        // Claim a 100-byte frame, send 10, vanish.
        let mut raw = TcpStream::connect(server.local_addr()).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"ten bytes!").unwrap();
        // Drop: the server sees EOF mid-frame.
    }
    std::thread::sleep(Duration::from_millis(50));
    bystander
        .ping()
        .expect("bystander survived truncated frame");
    let (_, result) = bystander
        .query_expect_result("select zone from time-zones")
        .expect("bystander can still query");
    assert_eq!(result.len(), 4);
    server.stop();
}

#[test]
fn oversized_header_is_answered_then_connection_closed() {
    let server = start_server();
    let mut bystander = connect(&server);
    let mut evil = connect(&server);
    // 0xdeadbeef ≈ 3.5 GiB claimed frame length.
    evil.send_raw(&0xdead_beefu32.to_be_bytes()).unwrap();
    match evil.read_response().expect("typed answer before close") {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("exceeds limit"), "{message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    // That connection is gone (unrecoverable desync) …
    assert!(evil.ping().is_err(), "oversized header must close session");
    // … but nobody else noticed.
    bystander.ping().expect("bystander unaffected");
    server.stop();
}

#[test]
fn invalid_utf8_query_text_is_a_typed_error_and_session_survives() {
    let server = start_server();
    let mut c = connect(&server);
    // Hand-build a Query whose text bytes are not UTF-8.
    let mut payload = Vec::new();
    payload.extend_from_slice(&5u64.to_be_bytes()); // id
    payload.push(1); // OP_QUERY
    payload.extend_from_slice(&0u32.to_be_bytes()); // timeout
    payload.extend_from_slice(&4u32.to_be_bytes()); // text length
    payload.extend_from_slice(&[0xff, 0xfe, 0x80, 0x81]);
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    c.send_raw(&frame).unwrap();
    match c.read_response().expect("answered") {
        Response::Error { id, kind, message } => {
            assert_eq!(id, 5, "error correlates to the bad request");
            assert_eq!(kind, ErrorKind::Protocol);
            assert!(message.contains("UTF-8"), "{message}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    // Same session keeps working.
    let (_, r) = c
        .query_expect_result("select city from cities where population > 5000000")
        .expect("session survived invalid UTF-8");
    assert!(!r.is_empty());
    server.stop();
}

#[test]
fn junk_opcode_and_truncated_payloads_get_typed_errors() {
    let server = start_server();
    let mut c = connect(&server);
    for payload in [
        vec![],        // empty payload
        vec![1, 2, 3], // shorter than an id
        {
            let mut p = 9u64.to_be_bytes().to_vec();
            p.push(250); // unknown opcode
            p
        },
        {
            let mut p = encode_request(&Request::Ping { id: 3 });
            p.extend_from_slice(b"trailing garbage");
            p
        },
        {
            // Query whose inner string length overruns the frame.
            let mut p = 11u64.to_be_bytes().to_vec();
            p.push(1);
            p.extend_from_slice(&0u32.to_be_bytes());
            p.extend_from_slice(&10_000u32.to_be_bytes());
            p.extend_from_slice(b"tiny");
            p
        },
    ] {
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&payload);
        c.send_raw(&frame).unwrap();
        match c.read_response().expect("each junk frame is answered") {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Protocol),
            other => panic!("expected protocol error, got {other:?}"),
        }
    }
    c.ping().expect("session survived the junk parade");
    server.stop();
}

#[test]
fn fuzzish_random_frames_never_kill_the_server() {
    let server = start_server();
    let mut bystander = connect(&server);

    // Deterministic xorshift so failures reproduce.
    let mut state = 0x1985_cafe_f00d_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for round in 0..50 {
        let mut c = connect(&server);
        let len = (next() % 64) as usize;
        let payload: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
        // Always frame correctly (unframed garbage is covered above) so
        // every blob exercises the payload decoder.
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&payload);
        c.send_raw(&frame).unwrap();
        match c.read_response() {
            Ok(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Protocol),
            // A blob can accidentally be a valid frame (e.g. a Ping);
            // any well-typed response is fine.
            Ok(_) => {}
            Err(e) => panic!("round {round}: server dropped a framed blob: {e}"),
        }
    }
    bystander.ping().expect("server healthy after fuzzing");
    let stats = bystander.stats().expect("stats still served");
    assert!(stats.contains("\"protocol_error\":"), "{stats}");
    server.stop();
}

#[test]
fn query_against_missing_relation_is_typed_not_fatal() {
    let server = start_server();
    let mut c = connect(&server);
    match c.query("select x from nonexistent").expect("answered") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Relational),
        other => panic!("expected semantic error, got {other:?}"),
    }
    c.ping().expect("alive");
    server.stop();
}
