//! The acceptance-criterion test: a 4-worker server sustains ≥ 64
//! concurrent connections of mixed PSQL queries — zero panics, zero
//! wrong results — while the admin path republishes snapshots under the
//! load. Plus the backpressure contract: a full queue answers
//! `Overloaded` immediately instead of stalling the session.

use psql::database::PictorialDatabase;
use psql_server::client::{Client, ClientError};
use psql_server::protocol::{decode_response, encode_request, ErrorKind, Request, Response};
use psql_server::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CONNECTIONS: usize = 64;
const QUERIES_PER_CONNECTION: usize = 12;

/// Runs a query, retrying on `Overloaded` per the backpressure contract.
fn query_retrying(c: &mut Client, text: &str) -> Result<Response, ClientError> {
    for _ in 0..200 {
        match c.query(text)? {
            Response::Overloaded { retry_after_ms, .. } => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
            }
            other => return Ok(other),
        }
    }
    Err(ClientError::Wire(
        "still overloaded after 200 retries".into(),
    ))
}

#[test]
fn sixty_four_connections_of_mixed_queries_with_concurrent_repack() {
    let config = ServerConfig {
        workers: 4,
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let server =
        Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    // Establish ground truth on epoch 1. Repack republishes the same
    // data, so these counts hold at every epoch.
    let mut probe = Client::connect_timeout(addr, Duration::from_secs(30)).expect("probe");
    let eastern = "select city, population from cities on us-map \
                   at loc covered-by {82.5 +- 17.5, 25 +- 20} where population > 450000";
    let juxtaposition = "select city, zone from cities, time-zones on us-map, time-zone-map \
                         at cities.loc covered-by time-zones.loc";
    let lakes = "select lake from lakes on lake-map at loc overlapping {60 +- 15, 35 +- 10}";
    let zones = "select zone, hour-diff from time-zones";
    let (_, r) = probe.query_expect_result(eastern).expect("ground truth");
    let expect_eastern = r.len();
    let (_, r) = probe
        .query_expect_result(juxtaposition)
        .expect("ground truth");
    let expect_juxta = r.len();
    assert_eq!(expect_juxta, 42);
    let (_, r) = probe.query_expect_result(lakes).expect("ground truth");
    let expect_lakes = r.len();
    assert!(expect_lakes >= 2, "window should catch the Great Lakes");

    let stop_admin = Arc::new(AtomicBool::new(false));
    let admin = {
        let stop = Arc::clone(&stop_admin);
        std::thread::spawn(move || {
            let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).expect("admin");
            let mut published = 0u64;
            while !stop.load(Ordering::Relaxed) {
                published = c.repack().expect("repack under load");
                std::thread::sleep(Duration::from_millis(5));
            }
            published
        })
    };

    let clients: Vec<_> = (0..CONNECTIONS)
        .map(|n| {
            std::thread::spawn(move || {
                let mut c =
                    Client::connect_timeout(addr, Duration::from_secs(30)).expect("connect");
                let mut last_epoch = 0u64;
                for i in 0..QUERIES_PER_CONNECTION {
                    match (n + i) % 4 {
                        0 => match query_retrying(&mut c, eastern).expect("eastern") {
                            Response::Result { epoch, result, .. } => {
                                assert_eq!(result.len(), expect_eastern, "conn {n} query {i}");
                                assert!(epoch >= last_epoch, "epochs never go backwards");
                                last_epoch = epoch;
                            }
                            other => panic!("conn {n}: expected result, got {other:?}"),
                        },
                        1 => match query_retrying(&mut c, juxtaposition).expect("juxta") {
                            Response::Result { result, .. } => {
                                assert_eq!(result.len(), expect_juxta, "conn {n} query {i}")
                            }
                            other => panic!("conn {n}: expected result, got {other:?}"),
                        },
                        2 => match query_retrying(&mut c, lakes).expect("lakes") {
                            Response::Result { result, .. } => {
                                assert_eq!(result.len(), expect_lakes, "conn {n} query {i}")
                            }
                            other => panic!("conn {n}: expected result, got {other:?}"),
                        },
                        _ => {
                            // Mix in plain relational plus a typed error:
                            // broken clients must not degrade the pool.
                            match query_retrying(&mut c, zones).expect("zones") {
                                Response::Result { result, .. } => assert_eq!(result.len(), 4),
                                other => panic!("conn {n}: expected result, got {other:?}"),
                            }
                            match query_retrying(&mut c, "select broken from").expect("err") {
                                Response::Error { kind, .. } => assert!(matches!(
                                    kind,
                                    ErrorKind::Parse | ErrorKind::Lex | ErrorKind::Semantic
                                )),
                                other => panic!("conn {n}: expected error, got {other:?}"),
                            }
                        }
                    }
                }
                c.ping().expect("session healthy at the end");
            })
        })
        .collect();

    for (n, h) in clients.into_iter().enumerate() {
        if let Err(e) = h.join() {
            panic!("client thread {n} panicked: {e:?}");
        }
    }
    stop_admin.store(true, Ordering::Relaxed);
    let published = admin.join().expect("admin thread panicked");
    assert!(published >= 2, "repack ran under load");

    // Zero panics on the server side: contained worker panics would show
    // up here as internal errors.
    let stats = probe.stats().expect("stats");
    assert!(stats.contains("\"internal_error\":0"), "{stats}");
    assert!(stats.contains("\"queries\":"), "{stats}");
    server.stop();
}

/// Reads one whole frame off a blocking stream.
fn read_frame_blocking(stream: &mut TcpStream) -> Vec<u8> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("frame payload");
    payload
}

fn encode_frame(req: &Request) -> Vec<u8> {
    let payload = encode_request(req);
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    frame
}

#[test]
fn storm_of_concurrent_connections_all_answered_and_correlated() {
    // The connection-storm contract at scale: N simultaneous live
    // connections (default 1000 under `cargo test`; the bench binary's
    // storm mode drives 10k through the same server), each held open
    // across multiple request waves — zero dropped connections, zero
    // garbled or mis-correlated responses. Scale with the
    // STORM_CONNECTIONS env var.
    let connections: usize = std::env::var("STORM_CONNECTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    // Each end of each connection is an fd in this one process.
    let _ = epoll::raise_nofile_limit((connections as u64) * 2 + 4_096);

    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    const SHARDS: usize = 8;
    const WAVES: u64 = 3;
    let per_shard = connections.div_ceil(SHARDS);
    let shards: Vec<_> = (0..SHARDS)
        .map(|s| {
            std::thread::spawn(move || {
                let count = per_shard.min(connections.saturating_sub(s * per_shard));
                // Open every connection in the shard first — the storm
                // is N *simultaneous* connections, not N sequential ones.
                let mut conns: Vec<TcpStream> = (0..count)
                    .map(|i| {
                        let stream = TcpStream::connect(addr)
                            .unwrap_or_else(|e| panic!("shard {s} conn {i}: connect: {e}"));
                        stream.set_nodelay(true).expect("nodelay");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(60)))
                            .expect("timeout");
                        stream
                    })
                    .collect();
                for wave in 0..WAVES {
                    // Write one request on every connection, then read one
                    // response from every connection: the whole shard is
                    // in flight at once.
                    for (i, stream) in conns.iter_mut().enumerate() {
                        let id = ((s * per_shard + i) as u64) * WAVES + wave + 1;
                        // Mostly pings (pure connection-scale traffic, answered
                        // on the reactor) with a sprinkle of real queries.
                        let frame = if i % 16 == 0 {
                            encode_frame(&Request::Query {
                                id,
                                timeout_ms: 30_000,
                                text: "select zone from time-zones".into(),
                            })
                        } else {
                            encode_frame(&Request::Ping { id })
                        };
                        stream.write_all(&frame).expect("write request");
                    }
                    for (i, stream) in conns.iter_mut().enumerate() {
                        let id = ((s * per_shard + i) as u64) * WAVES + wave + 1;
                        let payload = read_frame_blocking(stream);
                        let resp = decode_response(&payload).expect("decodable response");
                        match resp {
                            Response::Pong { id: got } => {
                                assert_eq!(got, id, "shard {s} conn {i}: wrong correlation")
                            }
                            Response::Result {
                                id: got, result, ..
                            } => {
                                assert_eq!(got, id, "shard {s} conn {i}: wrong correlation");
                                assert_eq!(result.len(), 4, "garbled result");
                            }
                            Response::Overloaded { id: got, .. } => {
                                // A bounced query is still a correlated answer.
                                assert_eq!(got, id, "shard {s} conn {i}: wrong correlation");
                            }
                            other => panic!("shard {s} conn {i}: unexpected {other:?}"),
                        }
                    }
                }
            })
        })
        .collect();
    for (s, h) in shards.into_iter().enumerate() {
        if let Err(e) = h.join() {
            panic!("storm shard {s} panicked: {e:?}");
        }
    }

    // The server saw the whole storm and survived it.
    let mut probe = Client::connect_timeout(addr, Duration::from_secs(30)).expect("probe");
    let stats = probe.stats().expect("stats");
    assert!(stats.contains("\"internal_error\":0"), "{stats}");
    server.stop();
}

#[test]
fn full_queue_answers_overloaded_with_retry_hint() {
    // One worker, one queue slot: park the worker on a sleeping query,
    // fill the slot, and every further pipelined query must bounce with
    // `Overloaded` instead of blocking the session thread.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    };
    let server =
        Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config).expect("bind");
    let mut c =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(10)).expect("connect");

    // Pipeline raw frames: 1 occupies the worker, 2 occupies the queue,
    // 3–8 find the queue full.
    const FLOOD: u64 = 8;
    for id in 1..=FLOOD {
        let payload = encode_request(&Request::Query {
            id,
            timeout_ms: 2_000,
            text: "#sleep 400 select city from cities".into(),
        });
        let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
        frame.extend_from_slice(&payload);
        c.send_raw(&frame).expect("pipeline");
    }

    let mut overloaded = 0;
    let mut served = 0;
    for _ in 0..FLOOD {
        match c.read_response().expect("every request is answered") {
            Response::Overloaded { retry_after_ms, .. } => {
                assert!(retry_after_ms > 0, "retry hint must be actionable");
                overloaded += 1;
            }
            Response::Result { .. } | Response::Timeout { .. } => served += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(
        overloaded >= FLOOD - 2,
        "flood of {FLOOD} should mostly bounce, got {overloaded} overloaded / {served} served"
    );
    assert!(served >= 1, "the occupying query itself completes");

    // After the flood drains the session is fine and stats counted it.
    c.ping().expect("session survived the flood");
    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"overloaded\":"), "{stats}");
    server.stop();
}
