//! End-to-end checks of the sustained-write path: dynamic inserts must
//! keep the frozen main tree serving (the delta buffers them), the
//! background merge must fold deltas back into packed + frozen trees,
//! and a WAL-configured server must recover every acknowledged insert
//! after a restart.

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::protocol::Response;
use psql_server::server::{Server, ServerConfig};
use rtree_geom::{Point, SpatialObject};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A unique throwaway WAL path per test (removed on a best-effort basis;
/// the OS temp dir reaps leftovers).
fn temp_wal_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "psql-server-wal-{tag}-{}-{n}.wal",
        std::process::id()
    ))
}

fn connect(server: &Server) -> Client {
    Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).expect("connect")
}

/// Pulls a `"field":value` number out of the flat STATS JSON.
fn json_u64(json: &str, field: &str) -> u64 {
    let key = format!("\"{field}\":");
    let start = json
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {json}"))
        + key.len();
    json[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("number")
}

#[test]
fn inserts_keep_frozen_serving_and_background_merge_folds_delta() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            merge_threshold: 4,
            merge_interval: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = connect(&server);

    let baseline = server
        .snapshots()
        .load()
        .db
        .picture("us-map")
        .expect("picture")
        .len();

    // Acknowledged inserts publish fresh snapshots with monotone epochs.
    let mut last_epoch = 0;
    for i in 0..10 {
        let epoch = client
            .insert_expect_done(
                "us-map",
                &format!("new-city-{i}"),
                SpatialObject::Point(Point::new(30.0 + i as f64, 20.0 + i as f64)),
            )
            .expect("insert acked");
        assert!(epoch > last_epoch, "epoch went backwards");
        last_epoch = epoch;
    }

    // The writes are visible and the frozen compilation survived them —
    // the regression this PR fixes is `add` dropping it.
    {
        let snap = server.snapshots().load();
        let pic = snap.db.picture("us-map").expect("picture");
        assert_eq!(pic.len(), baseline + 10);
        assert!(pic.frozen().is_some(), "insert dropped the frozen tree");
        assert!(snap.db.frozen_intact());
    }

    // The background merge (threshold 4) folds the delta into a freshly
    // packed + frozen tree and publishes it.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let snap = server.snapshots().load();
        let pic = snap.db.picture("us-map").expect("picture");
        if !pic.needs_merge() && pic.len() == baseline + 10 {
            assert_eq!(pic.packed_len(), baseline + 10);
            assert!(pic.frozen().is_some(), "merge lost the frozen tree");
            break;
        }
        assert!(Instant::now() < deadline, "background merge never ran");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Post-merge STATS pins the whole story: merges ran, the delta is
    // empty again, and packed pictures still serve frozen queries.
    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "merges") >= 1, "{stats}");
    assert_eq!(json_u64(&stats, "delta_items"), 0, "{stats}");
    assert_eq!(json_u64(&stats, "inserts"), 10, "{stats}");
    assert!(stats.contains("\"serves_frozen_queries\":true"), "{stats}");
    // No WAL configured: the write-path counters say so.
    assert_eq!(json_u64(&stats, "wal_appends"), 0, "{stats}");

    // Inserted objects answer spatial queries after the merge exactly
    // like loaded ones (they carry no relation tuple, so check through
    // the picture itself).
    {
        let snap = server.snapshots().load();
        let pic = snap.db.picture("us-map").expect("picture");
        let mut stats = rtree_index::SearchStats::default();
        let found = pic.search_window(
            psql::SpatialOp::CoveredBy,
            &rtree_geom::Rect::new(29.5, 19.5, 39.5, 29.5),
            &mut stats,
        );
        assert!(
            found.len() >= 10,
            "merged tree lost inserted objects: {found:?}"
        );
    }
    server.stop();
}

#[test]
fn snapshot_gauges_refresh_at_publication_not_stats_time() {
    // The regression: `delta_items` / `serves_frozen_queries` were only
    // mirrored into the registry while serving a STATS request, so an
    // embedder reading `server.metrics()` directly (or a scraper that
    // never sends STATS) saw stale zeros. They must track publication.
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            merge_threshold: usize::MAX,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let metrics = server.metrics();
    // Fresh from startup publication: no deltas, frozen trees intact.
    assert_eq!(metrics.delta_items.get(), 0);
    assert_eq!(metrics.serves_frozen_queries.get(), 1);

    let mut client = connect(&server);
    for i in 0..3u64 {
        client
            .insert_expect_done(
                "us-map",
                &format!("gauge-{i}"),
                SpatialObject::Point(Point::new(33.0 + i as f64, 21.0)),
            )
            .expect("insert acked");
        // No STATS request has been served; the gauge is fresh anyway.
        assert_eq!(
            metrics.delta_items.get(),
            i + 1,
            "delta gauge stale after insert publication"
        );
    }
    assert_eq!(metrics.serves_frozen_queries.get(), 1);

    // Repack folds the delta; the gauge follows at publication again.
    client.repack().expect("repack");
    assert_eq!(
        metrics.delta_items.get(),
        0,
        "delta gauge stale after repack publication"
    );
    assert_eq!(metrics.serves_frozen_queries.get(), 1);
    server.stop();
}

#[test]
fn insert_into_unknown_picture_is_a_typed_error() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let mut client = connect(&server);
    match client
        .insert(
            "no-such-map",
            "x",
            SpatialObject::Point(Point::new(0.0, 0.0)),
        )
        .expect("roundtrip")
    {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, psql_server::ErrorKind::Semantic);
            assert!(message.contains("no-such-map"), "{message}");
        }
        other => panic!("expected typed error, got {other:?}"),
    }
    // The session survives and the database is untouched.
    client.ping().expect("ping after error");
    assert_eq!(server.snapshots().load().db.delta_len(), 0);
    server.stop();
}

#[test]
fn wal_recovery_replays_acknowledged_inserts_across_restarts() {
    let wal = temp_wal_path("recovery");
    let config = || ServerConfig {
        workers: 2,
        wal_path: Some(wal.clone()),
        // Merging must not be required for durability; disable it so the
        // test pins recovery itself.
        merge_threshold: usize::MAX,
        ..ServerConfig::default()
    };

    let baseline;
    {
        let server =
            Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config()).expect("bind");
        baseline = server
            .snapshots()
            .load()
            .db
            .picture("us-map")
            .expect("picture")
            .len();
        let mut client = connect(&server);
        for i in 0..5 {
            client
                .insert_expect_done(
                    "us-map",
                    &format!("durable-{i}"),
                    SpatialObject::Point(Point::new(40.0 + i as f64, 22.0)),
                )
                .expect("insert acked");
        }
        let stats = client.stats().expect("stats");
        assert_eq!(json_u64(&stats, "wal_appends"), 5, "{stats}");
        assert!(json_u64(&stats, "wal_syncs") >= 1, "{stats}");
        assert_eq!(json_u64(&stats, "delta_items"), 5, "{stats}");
        server.stop();
        // The server is gone; only the WAL file remembers the writes.
    }

    // A fresh process start from the same base database: replay must
    // rebuild the delta trees exactly.
    {
        let server = Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config())
            .expect("bind after restart");
        let snap = server.snapshots().load();
        let pic = snap.db.picture("us-map").expect("picture");
        assert_eq!(pic.len(), baseline + 5, "recovery lost inserts");
        assert_eq!(pic.delta_len(), 5);
        assert!(pic.frozen().is_some());
        let labels: Vec<_> = (baseline as u64..(baseline + 5) as u64)
            .map(|id| pic.label(id).expect("label").to_owned())
            .collect();
        assert_eq!(
            labels,
            (0..5).map(|i| format!("durable-{i}")).collect::<Vec<_>>()
        );

        let mut client = connect(&server);
        let stats = client.stats().expect("stats");
        assert_eq!(json_u64(&stats, "wal_recovered"), 5, "{stats}");

        // New writes append after the recovered tail.
        client
            .insert_expect_done(
                "us-map",
                "durable-5",
                SpatialObject::Point(Point::new(45.0, 22.0)),
            )
            .expect("insert after recovery");
        server.stop();
    }

    // Second restart sees all six.
    {
        let server = Server::start(PictorialDatabase::with_us_map(), "127.0.0.1:0", config())
            .expect("bind after second restart");
        let snap = server.snapshots().load();
        assert_eq!(
            snap.db.picture("us-map").expect("picture").len(),
            baseline + 6
        );
        let mut client = connect(&server);
        let stats = client.stats().expect("stats");
        assert_eq!(json_u64(&stats, "wal_recovered"), 6, "{stats}");
        server.stop();
    }
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn pipelined_inserts_group_commit_under_one_fsync() {
    let wal = temp_wal_path("group-commit");
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            // One worker: the pipelined backlog departs as one pack.
            workers: 1,
            max_batch: 32,
            wal_path: Some(wal.clone()),
            merge_threshold: usize::MAX,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = connect(&server);

    // Stall the lone worker so a backlog of inserts builds, then let
    // the pack commit as a group.
    let sleep_id = client.send_query("#sleep 150").expect("send sleep");
    let mut ids = Vec::new();
    for i in 0..8 {
        ids.push(
            client
                .send_insert(
                    "us-map",
                    &format!("burst-{i}"),
                    SpatialObject::Point(Point::new(50.0 + i as f64, 30.0)),
                )
                .expect("pipeline insert"),
        );
    }
    let mut done = 0;
    for _ in 0..=ids.len() {
        match client.read_response().expect("response") {
            Response::Done { id, .. } => {
                assert!(ids.contains(&id));
                done += 1;
            }
            Response::Result { id, .. } => assert_eq!(id, sleep_id),
            other => panic!("unexpected {other:?}"),
        }
    }
    assert_eq!(done, ids.len());

    let stats = client.stats().expect("stats");
    assert_eq!(json_u64(&stats, "wal_appends"), 8, "{stats}");
    // Group commit: eight appends reached disk under very few fsyncs
    // (one per dequeued pack; the backlog may split across at most a
    // couple of pops, but never one fsync per insert).
    assert!(json_u64(&stats, "wal_syncs") < 8, "{stats}");
    server.stop();
    let _ = std::fs::remove_file(&wal);
}

#[test]
fn pack_external_over_the_wire_folds_delta_and_preserves_results() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            // Keep the background merge out of the way (the threshold is
            // never reached): this test wants the external pack itself
            // to fold the delta. The interval stays short because the
            // merge thread only notices shutdown once per tick.
            merge_threshold: 1_000_000,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = connect(&server);

    // Buffer a few dynamic inserts in the delta.
    for i in 0..6 {
        client
            .insert_expect_done(
                "us-map",
                &format!("ext-city-{i}"),
                SpatialObject::Point(Point::new(40.0 + i as f64, 22.0)),
            )
            .expect("insert acked");
    }
    let query = "select city from cities on us-map at loc overlapping {50 +- 50, 25 +- 25}";
    let (_, before) = client.query_expect_result(query).expect("pre-pack query");
    let epoch_before = server.snapshots().current_epoch();

    // External pack over the wire under a tight 64 KiB budget.
    let epoch = client.pack_external(64 * 1024).expect("pack external");
    assert!(epoch > epoch_before, "must publish a new snapshot");

    // Same answers, now from the externally packed + refrozen trees,
    // with the delta folded in.
    let (post_epoch, after) = client.query_expect_result(query).expect("post-pack query");
    assert_eq!(post_epoch, epoch);
    let sorted = |r: &psql::ResultSet| {
        let mut rows: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
        rows.sort();
        rows
    };
    assert_eq!(sorted(&before), sorted(&after));

    let stats = client.stats().expect("stats");
    assert_eq!(json_u64(&stats, "delta_items"), 0, "{stats}");
    assert!(stats.contains("\"serves_frozen_queries\":true"), "{stats}");
    server.stop();
}
