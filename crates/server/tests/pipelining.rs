//! Pipelining semantics of the event-driven core: many requests in
//! flight on one connection, responses in *completion* order correlated
//! by request id; frames reassembled correctly however the bytes arrive;
//! and a connection that never reads its responses parking them in its
//! own outbox without stalling anybody else.

use psql::database::PictorialDatabase;
use psql_server::client::Client;
use psql_server::protocol::{encode_request, Request, Response};
use psql_server::server::{Server, ServerConfig};
use std::collections::HashSet;
use std::time::{Duration, Instant};

fn connect(server: &Server) -> Client {
    Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).expect("connect")
}

fn response_id(resp: &Response) -> u64 {
    match resp {
        Response::Result { id, .. }
        | Response::Error { id, .. }
        | Response::Timeout { id }
        | Response::Overloaded { id, .. }
        | Response::Pong { id }
        | Response::Stats { id, .. }
        | Response::Done { id, .. } => *id,
    }
}

#[test]
fn pipelined_responses_complete_out_of_order_and_correlate_by_id() {
    // Two workers: a slow query parks one worker while the other answers
    // the fast queries pipelined behind it — so the fast responses *must*
    // overtake the slow one on the same connection.
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut c = connect(&server);

    let slow_id = c
        .send_query("#sleep 600 select zone from time-zones")
        .expect("send slow");
    // Give the pool a beat to dequeue the sleeper so the fast queries
    // land in a later pack.
    std::thread::sleep(Duration::from_millis(100));
    let fast_ids: Vec<u64> = (0..4)
        .map(|_| c.send_query("select zone from time-zones").expect("send"))
        .collect();

    let mut order = Vec::new();
    for _ in 0..=fast_ids.len() {
        let resp = c.read_response().expect("response");
        match &resp {
            Response::Result { result, .. } => assert_eq!(result.len(), 4),
            other => panic!("expected results, got {other:?}"),
        }
        order.push(response_id(&resp));
    }
    // Every id answered exactly once...
    let mut seen: Vec<u64> = order.clone();
    seen.sort_unstable();
    let mut expected: Vec<u64> = fast_ids.iter().copied().chain([slow_id]).collect();
    expected.sort_unstable();
    assert_eq!(seen, expected, "every request answered exactly once");
    // ...and the fast queries overtook the sleeper: completion order,
    // not submission order.
    assert_eq!(
        order.last(),
        Some(&slow_id),
        "slow request must finish last, got order {order:?}"
    );
    assert_ne!(order.first(), Some(&slow_id));
    server.stop();
}

#[test]
fn frames_survive_byte_at_a_time_and_coalesced_delivery() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("bind");
    let mut c = connect(&server);

    // One request trickled a single byte per write: the server's
    // incremental decoder must reassemble it across many readiness
    // events.
    let payload = encode_request(&Request::Query {
        id: 7,
        timeout_ms: 0,
        text: "select zone from time-zones".into(),
    });
    let mut frame = (payload.len() as u32).to_be_bytes().to_vec();
    frame.extend_from_slice(&payload);
    for byte in &frame {
        c.send_raw(std::slice::from_ref(byte)).expect("one byte");
        std::thread::sleep(Duration::from_millis(1));
    }
    match c.read_response().expect("trickled frame answered") {
        Response::Result { id, result, .. } => {
            assert_eq!(id, 7);
            assert_eq!(result.len(), 4);
        }
        other => panic!("expected result, got {other:?}"),
    }

    // Three requests coalesced into one write: one readiness event must
    // yield three frames and three responses.
    let mut blob = Vec::new();
    for id in [21u64, 22, 23] {
        let payload = encode_request(&Request::Ping { id });
        blob.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        blob.extend_from_slice(&payload);
    }
    c.send_raw(&blob).expect("coalesced frames");
    let mut ids = HashSet::new();
    for _ in 0..3 {
        match c.read_response().expect("pong") {
            Response::Pong { id } => assert!(ids.insert(id)),
            other => panic!("expected pong, got {other:?}"),
        }
    }
    assert_eq!(ids, HashSet::from([21, 22, 23]));
    server.stop();
}

#[test]
fn slow_reader_parks_responses_without_stalling_other_connections() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            queue_capacity: 256,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    // Connection A floods pipelined queries and reads *nothing*: its
    // responses pile up in the kernel buffers and its server-side
    // outbox. (Some may bounce `Overloaded` — that is still a response
    // and must still correlate.)
    let mut slow = connect(&server);
    let mut pending = HashSet::new();
    for _ in 0..2_000 {
        let id = slow
            .send_query("select zone from time-zones")
            .expect("pipeline");
        assert!(pending.insert(id));
    }

    // Meanwhile connection B stays snappy: the reactor must not be
    // wedged trying to write to A.
    let mut probe = connect(&server);
    for _ in 0..20 {
        let t0 = Instant::now();
        probe.ping().expect("probe ping during flood");
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "probe stalled behind a slow reader"
        );
    }

    // Now A drains: every pipelined request answered exactly once.
    for _ in 0..2_000 {
        let resp = slow.read_response().expect("flood response");
        let id = response_id(&resp);
        assert!(pending.remove(&id), "duplicate or unknown id {id}");
        match resp {
            Response::Result { result, .. } => assert_eq!(result.len(), 4),
            Response::Overloaded { .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(pending.is_empty(), "missing responses: {pending:?}");
    slow.ping().expect("slow connection still healthy");
    server.stop();
}
