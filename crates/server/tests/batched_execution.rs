//! End-to-end check of the batched worker path: a pipelined backlog is
//! dequeued as one pack, executed through the batched query executor,
//! and every response must match single-query execution of the same
//! text — same rows, same columns, correct id routing — with the batch
//! counters visible in `STATS`.

use psql::database::PictorialDatabase;
use psql::functions::FunctionRegistry;
use psql_server::client::Client;
use psql_server::protocol::Response;
use psql_server::server::{Server, ServerConfig};
use std::collections::HashMap;
use std::time::Duration;

#[test]
fn pipelined_backlog_executes_as_batch_with_identical_results() {
    // One worker so the pipelined backlog queues behind the #sleep and
    // departs as a single pack.
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).expect("connect");

    // Occupy the lone worker long enough for the backlog to build.
    let sleep_id = client.send_query("#sleep 200").expect("send sleep");

    let texts = [
        "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
        "select zone from time-zones on time-zone-map at loc overlapping {50 +- 10, 25 +- 25}",
        "select city from cities on us-map at loc nearest 3 {53 +- 0, 32 +- 0}",
        "select city from cities where population >= 6000000",
        "select zone from time-zones on time-zone-map at loc covering {53 +- 1, 32 +- 1}",
        "select city from cities on us-map at loc disjoined {10 +- 9, 25 +- 25}",
        "select count-of(loc) from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
        "select city, zone from cities, time-zones on us-map, time-zone-map \
         at cities.loc covered-by time-zones.loc",
        // One malformed query: its error must land in its own slot.
        "select nonsense from cities",
    ];
    let mut ids = Vec::new();
    for text in &texts {
        ids.push(client.send_query(text).expect("pipeline query"));
    }

    // Collect one response per request, keyed by id (arrival order is
    // not part of the contract).
    let mut responses: HashMap<u64, Response> = HashMap::new();
    for _ in 0..=texts.len() {
        let resp = client.read_response().expect("response");
        let id = match &resp {
            Response::Result { id, .. }
            | Response::Error { id, .. }
            | Response::Timeout { id }
            | Response::Overloaded { id, .. } => *id,
            other => panic!("unexpected response {other:?}"),
        };
        responses.insert(id, resp);
    }
    assert!(responses.contains_key(&sleep_id), "sleep answered");

    // Differential: each served result equals local single-query
    // execution of the same text against the same database.
    let db = PictorialDatabase::with_us_map();
    let functions = FunctionRegistry::with_builtins();
    for (text, id) in texts.iter().zip(&ids) {
        let local =
            psql::parse_query(text).and_then(|q| psql::exec::execute_with(&db, &q, &functions));
        match (&responses[id], local) {
            (Response::Result { result, .. }, Ok(expect)) => {
                assert_eq!(result.columns, expect.columns, "{text}");
                assert_eq!(result.rows, expect.rows, "{text}");
                assert_eq!(result.highlights, expect.highlights, "{text}");
            }
            (Response::Error { message, .. }, Err(e)) => {
                assert_eq!(message, &e.to_string(), "{text}");
            }
            (served, local) => panic!("{text}: served {served:?} vs local {local:?}"),
        }
    }

    // The backlog must actually have gone through the batched path.
    let stats = client.stats().expect("stats");
    let batches = json_u64(&stats, "\"batches\":");
    let batched = json_u64(&stats, "\"batched_queries\":");
    assert!(batches >= 1, "no batch formed: {stats}");
    assert!(batched >= 2, "batch too small: {stats}");

    server.stop();
}

#[test]
fn expired_job_gets_timeout_without_poisoning_its_batch() {
    // One worker, so everything pipelined during the #sleep departs as
    // one pack. One job carries a deadline that expires while the
    // worker is stalled; batch formation must answer *that job alone*
    // with Timeout and still execute the rest of the pack.
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 32,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).expect("connect");

    // Stall the lone worker well past the doomed job's deadline.
    let sleep_id = client.send_query("#sleep 400").expect("send sleep");

    // The doomed job: 50ms deadline, expires while the worker sleeps.
    let doomed_id = client
        .send_query_with_timeout(
            "select city from cities on us-map at loc covered-by {82.5 +- 17.5, 25 +- 20}",
            50,
        )
        .expect("send doomed");

    // Healthy pack-mates with the (generous) default deadline.
    let healthy = [
        "select zone from time-zones on time-zone-map at loc overlapping {50 +- 10, 25 +- 25}",
        "select city from cities where population >= 6000000",
        "select city from cities on us-map at loc nearest 3 {53 +- 0, 32 +- 0}",
    ];
    let mut healthy_ids = Vec::new();
    for text in &healthy {
        healthy_ids.push(client.send_query(text).expect("pipeline query"));
    }

    let mut responses: HashMap<u64, Response> = HashMap::new();
    for _ in 0..(2 + healthy.len()) {
        let resp = client.read_response().expect("response");
        let id = match &resp {
            Response::Result { id, .. }
            | Response::Error { id, .. }
            | Response::Timeout { id }
            | Response::Overloaded { id, .. } => *id,
            other => panic!("unexpected response {other:?}"),
        };
        responses.insert(id, resp);
    }

    assert!(
        matches!(responses[&sleep_id], Response::Result { .. }),
        "sleep job: {:?}",
        responses[&sleep_id]
    );
    assert!(
        matches!(responses[&doomed_id], Response::Timeout { .. }),
        "doomed job should time out: {:?}",
        responses[&doomed_id]
    );
    for (text, id) in healthy.iter().zip(&healthy_ids) {
        match &responses[id] {
            Response::Result { result, .. } => {
                assert!(!result.rows.is_empty(), "{text} returned nothing")
            }
            other => panic!("{text}: healthy pack-mate poisoned: {other:?}"),
        }
    }

    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "\"timeout\":") >= 1, "{stats}");
    server.stop();
}

/// Extracts the integer following `key` from a flat JSON string.
fn json_u64(json: &str, key: &str) -> u64 {
    let at = json.find(key).unwrap_or_else(|| panic!("{key} in {json}"));
    json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer after key")
}
