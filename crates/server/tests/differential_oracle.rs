//! End-to-end differential: PSQL query text through a running server —
//! wire protocol, worker pool, snapshot handle, planner, packed R-tree
//! search — against the brute-force oracle evaluating the same operator
//! over the picture's objects directly. Any layer that drops, duplicates
//! or mislabels a row shows up as a sorted-set mismatch.

use psql::database::PictorialDatabase;
use psql::SpatialOp;
use psql_server::client::Client;
use psql_server::server::{Server, ServerConfig};
use rtree_geom::Rect;
use rtree_oracle::reference;
use std::time::Duration;

const OPS: [SpatialOp; 4] = [
    SpatialOp::Covering,
    SpatialOp::CoveredBy,
    SpatialOp::Overlapping,
    SpatialOp::Disjoined,
];

/// Windows over the 100×50 frame whose centre/half-extent decompositions
/// are exact in both decimal and binary, so the query text round-trips
/// through the lexer bit-for-bit.
fn windows() -> Vec<Rect> {
    vec![
        Rect::new(0.0, 0.0, 100.0, 50.0),
        Rect::new(0.0, 0.0, 50.0, 25.0),
        Rect::new(50.0, 25.0, 100.0, 50.0),
        Rect::new(60.0, 10.0, 90.0, 40.0),
        Rect::new(25.0, 0.0, 25.0, 50.0),  // degenerate line
        Rect::new(30.0, 20.0, 30.0, 20.0), // degenerate point
    ]
}

#[test]
fn served_queries_match_oracle() {
    let server = Server::start(
        PictorialDatabase::with_us_map(),
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client =
        Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).expect("connect");

    // The oracle's view: the same deterministic us-map content, local.
    let db = PictorialDatabase::with_us_map();
    let pic = db.picture("us-map").expect("picture");
    let objects: Vec<_> = pic
        .object_ids()
        .map(|id| pic.object(id).expect("id enumerated").clone())
        .collect();
    let labels: Vec<String> = pic
        .object_ids()
        .map(|id| pic.label(id).expect("labelled").to_owned())
        .collect();

    for w in windows() {
        let cx = (w.min_x + w.max_x) / 2.0;
        let cy = (w.min_y + w.max_y) / 2.0;
        let dx = (w.max_x - w.min_x) / 2.0;
        let dy = (w.max_y - w.min_y) / 2.0;
        for op in OPS {
            let text = format!(
                "select city from cities on us-map at loc {} {{{cx} +- {dx}, {cy} +- {dy}}}",
                op.name()
            );
            let (_, result) = client.query_expect_result(&text).expect("query");
            let mut got: Vec<String> = result
                .rows
                .iter()
                .map(|row| {
                    row.first()
                        .and_then(|v| v.as_str())
                        .expect("city is a string")
                        .to_owned()
                })
                .collect();
            got.sort_unstable();
            let mut expect: Vec<String> = reference::window_objects(&objects, op, &w)
                .into_iter()
                .map(|id| labels[id as usize].clone())
                .collect();
            expect.sort_unstable();
            assert_eq!(
                got, expect,
                "op {op}, window {w:?}: served rows diverge from oracle ({text:?})"
            );
        }
    }
    server.stop();
}
