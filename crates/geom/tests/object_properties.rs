//! Property tests on spatial objects: consistency of the exact predicates
//! that refine R-tree candidates.

use proptest::prelude::*;
use rtree_geom::{Point, Rect, Region, Segment, SpatialObject};

fn arb_point() -> impl Strategy<Value = Point> {
    (-100.0..100.0f64, -100.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_window() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

fn arb_object() -> impl Strategy<Value = SpatialObject> {
    prop_oneof![
        arb_point().prop_map(SpatialObject::Point),
        (arb_point(), arb_point()).prop_map(|(a, b)| SpatialObject::Segment(Segment::new(a, b))),
        arb_window().prop_map(|r| SpatialObject::Region(Region::rectangle(r))),
        prop::collection::vec(arb_point(), 3..8).prop_filter_map("degenerate polygon", |pts| {
            Region::new(pts).ok().map(SpatialObject::Region)
        }),
    ]
}

proptest! {
    /// `within_window ⇒ intersects_window` (containment is stronger).
    #[test]
    fn within_implies_intersects(obj in arb_object(), w in arb_window()) {
        if obj.within_window(&w) {
            prop_assert!(obj.intersects_window(&w), "{obj} within {w} but not intersecting");
        }
    }

    /// The MBR is a sound filter: if the exact test says the object
    /// touches the window, the MBR must intersect it too.
    #[test]
    fn mbr_filter_is_sound(obj in arb_object(), w in arb_window()) {
        if obj.intersects_window(&w) {
            prop_assert!(obj.mbr().intersects(&w));
        }
    }

    /// The MBR contains the representative point and every polygon vertex.
    #[test]
    fn mbr_contains_representative(obj in arb_object()) {
        prop_assert!(obj.mbr().contains_point(obj.representative()));
        if let SpatialObject::Region(r) = &obj {
            for &v in r.vertices() {
                prop_assert!(obj.mbr().contains_point(v));
            }
        }
    }

    /// Object covered by its own MBR.
    #[test]
    fn object_within_own_mbr(obj in arb_object()) {
        prop_assert!(obj.within_window(&obj.mbr()));
        prop_assert!(obj.intersects_window(&obj.mbr()));
    }

    /// Window fully containing the MBR ⇒ within; disjoint MBR ⇒ not
    /// intersecting (the two pruning directions R-tree search relies on).
    #[test]
    fn pruning_directions(obj in arb_object(), w in arb_window()) {
        if w.covers(&obj.mbr()) {
            prop_assert!(obj.within_window(&w));
        }
        if !w.intersects(&obj.mbr()) {
            prop_assert!(!obj.intersects_window(&w));
        }
    }

    /// Segment/rect intersection is symmetric in the segment's endpoint
    /// order.
    #[test]
    fn segment_direction_irrelevant(a in arb_point(), b in arb_point(), w in arb_window()) {
        let fwd = Segment::new(a, b).intersects_rect(&w);
        let rev = Segment::new(b, a).intersects_rect(&w);
        prop_assert_eq!(fwd, rev);
    }

    /// Region area is invariant under vertex rotation of the boundary
    /// list, and contains_point is stable across it.
    #[test]
    fn region_vertex_rotation_invariance(
        pts in prop::collection::vec(arb_point(), 3..8),
        probe in arb_point(),
        shift in 0usize..8,
    ) {
        if let Ok(region) = Region::new(pts.clone()) {
            let n = pts.len();
            let mut rotated = pts.clone();
            rotated.rotate_left(shift % n);
            let region2 = Region::new(rotated).expect("same vertex count");
            prop_assert!((region.area() - region2.area()).abs() < 1e-9);
            prop_assert_eq!(region.contains_point(probe), region2.contains_point(probe));
        }
    }
}
