//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use rtree_geom::rectset;
use rtree_geom::transform;
use rtree_geom::{Point, Rect};

fn arb_point() -> impl Strategy<Value = Point> {
    (-1000.0..1000.0f64, -1000.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

proptest! {
    #[test]
    fn union_is_commutative_and_covering(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.covers(&a));
        prop_assert!(u.covers(&b));
    }

    #[test]
    fn union_is_associative(a in arb_rect(), b in arb_rect(), c in arb_rect()) {
        let left = a.union(&b).union(&c);
        let right = a.union(&b.union(&c));
        prop_assert!((left.min_x - right.min_x).abs() < 1e-12);
        prop_assert!((left.max_x - right.max_x).abs() < 1e-12);
        prop_assert!((left.min_y - right.min_y).abs() < 1e-12);
        prop_assert!((left.max_y - right.max_y).abs() < 1e-12);
    }

    #[test]
    fn intersection_symmetric_and_within_both(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.covers(&i));
            prop_assert!(b.covers(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(a.disjoint(&b));
        }
    }

    #[test]
    fn intersects_iff_positive_or_touching_intersection(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    #[test]
    fn enlargement_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= 0.0);
        prop_assert!(a.enlargement(&a) == 0.0);
    }

    #[test]
    fn covers_implies_intersects_and_area_order(a in arb_rect(), b in arb_rect()) {
        if a.covers(&b) {
            prop_assert!(a.intersects(&b));
            prop_assert!(a.area() >= b.area());
        }
    }

    #[test]
    fn mbr_of_points_contains_all(pts in prop::collection::vec(arb_point(), 1..50)) {
        let m = Rect::mbr_of_points(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(m.contains_point(*p));
        }
    }

    #[test]
    fn rotation_preserves_pairwise_distances(
        pts in prop::collection::vec(arb_point(), 2..20),
        angle in 0.0..std::f64::consts::TAU,
    ) {
        let rotated = transform::rotate_all(&pts, angle);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let before = pts[i].distance(pts[j]);
                let after = rotated[i].distance(rotated[j]);
                prop_assert!((before - after).abs() < 1e-6);
            }
        }
    }

    /// Lemma 3.1: a rotation giving all-distinct x-coordinates exists for
    /// any set of distinct points.
    #[test]
    fn lemma_3_1_rotation_exists(pts in prop::collection::vec(arb_point(), 1..40)) {
        let mut dedup = pts.clone();
        dedup.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        dedup.dedup();
        let angle = transform::rotation_with_distinct_x(&dedup)
            .expect("lemma 3.1 guarantees an angle");
        prop_assert!(transform::all_x_distinct(&transform::rotate_all(&dedup, angle)));
    }

    #[test]
    fn union_area_bounds(rects in prop::collection::vec(arb_rect(), 0..25)) {
        let union = rectset::union_area(&rects);
        let total = rectset::total_area(&rects);
        let overlap = rectset::overlap_area(&rects);
        // 0 <= overlap <= union <= total (sum counts overlap multiply)
        prop_assert!(overlap >= -1e-9);
        prop_assert!(union <= total + 1e-6 * total.max(1.0));
        prop_assert!(overlap <= union + 1e-6 * union.max(1.0));
        if let Some(max_a) = rects.iter().map(|r| r.area()).max_by(f64::total_cmp) {
            prop_assert!(union >= max_a - 1e-6 * max_a.max(1.0));
        }
    }

    #[test]
    fn union_plus_disjointness(rects in prop::collection::vec(arb_rect(), 0..15)) {
        // union == total iff overlap area is ~0 for non-degenerate sets.
        let union = rectset::union_area(&rects);
        let total = rectset::total_area(&rects);
        let overlap = rectset::overlap_area(&rects);
        if overlap < 1e-9 {
            prop_assert!((union - total).abs() < 1e-6 * total.max(1.0));
        } else {
            prop_assert!(total > union - 1e-9);
        }
    }
}
