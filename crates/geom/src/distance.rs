//! Distance helpers shared by PACK's nearest-neighbour selection and kNN
//! search.

use crate::point::Point;
use crate::rect::Rect;

/// Squared Euclidean distance between two points.
#[inline]
pub fn point_point_sq(a: Point, b: Point) -> f64 {
    a.distance_sq(b)
}

/// Squared distance from a point to a rectangle (zero inside).
#[inline]
pub fn point_rect_sq(p: Point, r: &Rect) -> f64 {
    r.min_distance_sq(p)
}

/// Squared distance between two rectangles (zero when intersecting).
#[inline]
pub fn rect_rect_sq(a: &Rect, b: &Rect) -> f64 {
    a.min_distance_sq_rect(b)
}

/// Squared distance between rectangle centers.
///
/// The PACK paper leaves "spatially closest" underspecified for non-point
/// items; center distance is the natural reading for MBRs of a previous
/// level and is what `packed-rtree-core`'s NN function uses by default.
#[inline]
pub fn center_distance_sq(a: &Rect, b: &Rect) -> f64 {
    a.center().distance_sq(b.center())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_distance() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(4.0, 0.0, 6.0, 2.0);
        assert_eq!(center_distance_sq(&a, &b), 16.0);
    }

    #[test]
    fn rect_rect_zero_when_touching() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(rect_rect_sq(&a, &b), 0.0);
    }

    #[test]
    fn point_rect_inside_is_zero() {
        let r = Rect::new(0.0, 0.0, 4.0, 4.0);
        assert_eq!(point_rect_sq(Point::new(2.0, 2.0), &r), 0.0);
        assert_eq!(point_rect_sq(Point::new(7.0, 2.0), &r), 9.0);
    }
}
