//! Rotations for Lemma 3.1: finding an angle that makes all x-coordinates
//! distinct.
//!
//! Lemma 3.1 proves that for any finite point set `S` there is an angle `α`
//! such that rotating `S` by `α` gives every point a distinct x-coordinate
//! (only finitely many angles are "bad" — one per pair of points — while
//! there are infinitely many angles). Theorem 3.2 then packs the rotated
//! points into disjoint MBRs of 4 in x-order.
//!
//! [`rotation_with_distinct_x`] constructively finds such an angle, and
//! [`all_x_distinct`] is the paper's `Fα(S) = |S|` check.

use crate::point::Point;

/// Returns `true` if all points have pairwise distinct x-coordinates, i.e.
/// the paper's `F(S) = |S|`.
pub fn all_x_distinct(points: &[Point]) -> bool {
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.windows(2).all(|w| w[0] < w[1])
}

/// Counts distinct x-coordinates — the paper's `F(S)`.
pub fn distinct_x_count(points: &[Point]) -> usize {
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    xs.len()
}

/// `Fα(S)`: distinct x-coordinates after rotating by `angle`.
pub fn distinct_x_count_rotated(points: &[Point], angle: f64) -> usize {
    let rotated: Vec<Point> = points.iter().map(|p| p.rotated(angle)).collect();
    distinct_x_count(&rotated)
}

/// Finds an angle `α` such that rotating `points` by `α` makes all
/// x-coordinates distinct (Lemma 3.1), or `None` if the input contains
/// duplicate points (for which no rotation can help).
///
/// Strategy: there are at most `|S|·(|S|−1)/2` bad angles (one per point
/// pair, modulo π), so we probe a sequence of candidate angles that cannot
/// all be bad. Probes start at 0 (the common case: data already has
/// distinct x) and continue with small irrational-step offsets to dodge any
/// axis-aligned structure in the data.
pub fn rotation_with_distinct_x(points: &[Point]) -> Option<f64> {
    // Duplicate points can never be separated by a rotation.
    let mut sorted: Vec<Point> = points.to_vec();
    sorted.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return None;
    }
    // n(n-1)/2 bad angles at most; probe more candidates than that.
    let n = points.len();
    let max_probes = n * n.saturating_sub(1) / 2 + 2;
    // Irrational step so that probes never cycle onto a bad-angle lattice.
    let step = std::f64::consts::SQRT_2 / 100.0;
    for k in 0..max_probes {
        let angle = k as f64 * step;
        let rotated: Vec<Point> = points.iter().map(|p| p.rotated(angle)).collect();
        if all_x_distinct(&rotated) {
            return Some(angle);
        }
    }
    // Mathematically unreachable for distinct points, but floating-point
    // coincidences could in principle exhaust the probes.
    None
}

/// Rotates every point counter-clockwise about the origin by `angle`.
pub fn rotate_all(points: &[Point], angle: f64) -> Vec<Point> {
    points.iter().map(|p| p.rotated(angle)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_x_detection() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 0.0),
        ];
        assert!(!all_x_distinct(&pts));
        assert_eq!(distinct_x_count(&pts), 2);
        let ok = [
            Point::new(0.0, 0.0),
            Point::new(0.5, 1.0),
            Point::new(1.0, 0.0),
        ];
        assert!(all_x_distinct(&ok));
        assert_eq!(distinct_x_count(&ok), 3);
    }

    #[test]
    fn rotation_found_for_vertical_line() {
        // All points share x = 0; rotation must separate them.
        let pts: Vec<Point> = (0..10).map(|i| Point::new(0.0, i as f64)).collect();
        let angle = rotation_with_distinct_x(&pts).expect("lemma 3.1");
        let rotated = rotate_all(&pts, angle);
        assert!(all_x_distinct(&rotated));
    }

    #[test]
    fn rotation_found_for_grid() {
        // Grids maximize duplicate x-coordinates and collinear pairs.
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let angle = rotation_with_distinct_x(&pts).expect("lemma 3.1");
        assert!(all_x_distinct(&rotate_all(&pts, angle)));
    }

    #[test]
    fn duplicate_points_rejected() {
        let pts = [Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert_eq!(rotation_with_distinct_x(&pts), None);
    }

    #[test]
    fn already_distinct_needs_no_rotation() {
        let pts = [
            Point::new(0.0, 5.0),
            Point::new(1.0, 2.0),
            Point::new(2.0, 9.0),
        ];
        assert_eq!(rotation_with_distinct_x(&pts), Some(0.0));
    }

    #[test]
    fn f_alpha_identity_at_zero() {
        let pts = [Point::new(0.0, 0.0), Point::new(0.0, 1.0)];
        assert_eq!(distinct_x_count_rotated(&pts, 0.0), distinct_x_count(&pts));
        // Quarter turn turns the shared-x pair into a shared-y pair with
        // distinct x.
        assert_eq!(
            distinct_x_count_rotated(&pts, std::f64::consts::FRAC_PI_2),
            2
        );
    }

    #[test]
    fn empty_and_singleton() {
        assert!(all_x_distinct(&[]));
        assert_eq!(rotation_with_distinct_x(&[]), Some(0.0));
        assert_eq!(rotation_with_distinct_x(&[Point::new(3.0, 4.0)]), Some(0.0));
    }
}
