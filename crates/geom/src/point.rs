//! Two-dimensional points.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the plane.
///
/// Points are one of the three spatial object classes the paper works with
/// ("points", "segments", "regions", §3). Cities on the US map of Figure 3.1
/// are points.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred over [`Point::distance`] in hot paths (nearest-neighbour
    /// selection in PACK) because it avoids the square root while inducing
    /// the same ordering.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Rotates the point counter-clockwise about the origin by `angle`
    /// radians.
    ///
    /// This is the transformation of Lemma 3.1: the paper rotates an entire
    /// point set to make all x-coordinates distinct.
    #[inline]
    pub fn rotated(&self, angle: f64) -> Point {
        let (sin, cos) = angle.sin_cos();
        Point {
            x: self.x * cos - self.y * sin,
            y: self.x * sin + self.y * cos,
        }
    }

    /// Midpoint of the segment from `self` to `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point {
            x: (self.x + other.x) / 2.0,
            y: (self.y + other.y) / 2.0,
        }
    }

    /// Dot product, treating the points as vectors.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product, treating the points as vectors.
    ///
    /// Positive when `other` is counter-clockwise of `self`.
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_squared_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-3.5, 0.25);
        let b = Point::new(7.0, -2.0);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn rotation_by_quarter_turn() {
        let p = Point::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!((p.x - 0.0).abs() < 1e-12);
        assert!((p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_distance_to_origin() {
        let p = Point::new(3.0, 4.0);
        for i in 0..16 {
            let q = p.rotated(i as f64 * 0.3);
            assert!((q.distance(Point::ORIGIN) - 5.0).abs() < 1e-9);
        }
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a.dot(b), 1.0);
        assert_eq!(a.cross(b), -7.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(10.0, 4.0));
        assert_eq!(m, Point::new(5.0, 2.0));
    }
}
