//! Line segments — the spatial class of highway sections (§2.1, §3).

use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// A straight line segment between two endpoints.
///
/// The `highways(hwy-name, hwy-section, loc)` relation of §2.1 stores one
/// segment per tuple; aggregate functions such as `northest` operate on sets
/// of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Minimal bounding rectangle of the segment.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// `true` if the segment has any point inside or on the rectangle.
    ///
    /// This is the exact test behind direct spatial search over segment
    /// objects: the R-tree prunes by MBR, then the candidate segments are
    /// checked against the target window with this predicate.
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        // Quick accept: either endpoint inside.
        if r.contains_point(self.a) || r.contains_point(self.b) {
            return true;
        }
        // Quick reject: MBRs disjoint.
        if !self.mbr().intersects(r) {
            return false;
        }
        // Otherwise the segment must cross one of the rectangle's edges.
        let c = r.corners();
        let edges = [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ];
        edges.iter().any(|e| self.intersects_segment(e))
    }

    /// `true` if this segment shares at least one point with `other`.
    ///
    /// Uses the standard orientation test and handles collinear overlap.
    pub fn intersects_segment(&self, other: &Segment) -> bool {
        fn orient(p: Point, q: Point, r: Point) -> f64 {
            (q - p).cross(r - p)
        }
        fn on_segment(p: Point, q: Point, r: Point) -> bool {
            // Assuming collinearity, is q within the box of p..r?
            q.x >= p.x.min(r.x) && q.x <= p.x.max(r.x) && q.y >= p.y.min(r.y) && q.y <= p.y.max(r.y)
        }
        let (p1, q1, p2, q2) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p1, q1, p2);
        let d2 = orient(p1, q1, q2);
        let d3 = orient(p2, q2, p1);
        let d4 = orient(p2, q2, q1);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(p1, p2, q1))
            || (d2 == 0.0 && on_segment(p1, q2, q1))
            || (d3 == 0.0 && on_segment(p2, p1, q2))
            || (d4 == 0.0 && on_segment(p2, q1, q2))
    }

    /// `true` if `p` lies exactly on the segment (endpoints included).
    ///
    /// Uses the orientation test (`cross == 0` plus a bounding-box span
    /// check), not [`distance_sq_to_point`](Segment::distance_sq_to_point):
    /// the distance goes through a division and a projection whose
    /// rounding can turn an exact hit into a tiny positive distance, and
    /// boundary predicates must not miss exact hits.
    pub fn contains_point(&self, p: Point) -> bool {
        (self.b - self.a).cross(p - self.a) == 0.0
            && p.x >= self.a.x.min(self.b.x)
            && p.x <= self.a.x.max(self.b.x)
            && p.y >= self.a.y.min(self.b.y)
            && p.y <= self.a.y.max(self.b.y)
    }

    /// Squared distance from a point to the segment.
    pub fn distance_sq_to_point(&self, p: Point) -> f64 {
        let ab = self.b - self.a;
        let len_sq = ab.dot(ab);
        if len_sq == 0.0 {
            return self.a.distance_sq(p);
        }
        let t = ((p - self.a).dot(ab) / len_sq).clamp(0.0, 1.0);
        let proj = self.a + ab * t;
        proj.distance_sq(p)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -- {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn mbr_and_length() {
        let seg = s(0.0, 3.0, 4.0, 0.0);
        assert_eq!(seg.length(), 5.0);
        assert_eq!(seg.mbr(), Rect::new(0.0, 0.0, 4.0, 3.0));
        assert_eq!(seg.midpoint(), Point::new(2.0, 1.5));
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(s(0.0, 0.0, 2.0, 2.0).intersects_segment(&s(0.0, 2.0, 2.0, 0.0)));
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        assert!(!s(0.0, 0.0, 2.0, 0.0).intersects_segment(&s(0.0, 1.0, 2.0, 1.0)));
    }

    #[test]
    fn collinear_overlapping_segments_intersect() {
        assert!(s(0.0, 0.0, 2.0, 0.0).intersects_segment(&s(1.0, 0.0, 3.0, 0.0)));
        assert!(!s(0.0, 0.0, 1.0, 0.0).intersects_segment(&s(2.0, 0.0, 3.0, 0.0)));
    }

    #[test]
    fn touching_at_endpoint_intersects() {
        assert!(s(0.0, 0.0, 1.0, 1.0).intersects_segment(&s(1.0, 1.0, 2.0, 0.0)));
    }

    #[test]
    fn segment_through_rect_interior() {
        // Neither endpoint inside, but the segment slices through.
        let seg = s(-1.0, 1.0, 3.0, 1.0);
        assert!(seg.intersects_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)));
    }

    #[test]
    fn segment_endpoint_inside_rect() {
        let seg = s(1.0, 1.0, 9.0, 9.0);
        assert!(seg.intersects_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)));
    }

    #[test]
    fn segment_missing_rect() {
        let seg = s(-1.0, -1.0, -1.0, 5.0);
        assert!(!seg.intersects_rect(&Rect::new(0.0, 0.0, 2.0, 2.0)));
        // MBRs overlap but the segment passes by the corner.
        let diag = s(3.0, 0.0, 0.0, 3.0);
        assert!(!diag.intersects_rect(&Rect::new(0.0, 0.0, 1.0, 1.0)));
    }

    #[test]
    fn point_distance_to_segment() {
        let seg = s(0.0, 0.0, 4.0, 0.0);
        assert_eq!(seg.distance_sq_to_point(Point::new(2.0, 3.0)), 9.0);
        assert_eq!(seg.distance_sq_to_point(Point::new(-3.0, 4.0)), 25.0);
        assert_eq!(seg.distance_sq_to_point(Point::new(1.0, 0.0)), 0.0);
    }

    #[test]
    fn zero_length_segment_distance() {
        let seg = s(1.0, 1.0, 1.0, 1.0);
        assert_eq!(seg.distance_sq_to_point(Point::new(4.0, 5.0)), 25.0);
    }
}
