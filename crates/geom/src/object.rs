//! The unified spatial-object type stored in pictorial relations.

use crate::point::Point;
use crate::rect::Rect;
use crate::region::Region;
use crate::segment::Segment;
use std::fmt;

/// Any of the paper's three spatial object classes (§3): a point, a line
/// segment, or a polygonal region.
///
/// "Since the leaf nodes of an R-tree contain pointers to tuples and not the
/// actual tuples themselves, points and regions may be freely intermixed
/// within any R-tree" — this enum is what those tuple-side `loc` values hold.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialObject {
    /// A point object, e.g. a city on the US map (Figure 3.1).
    Point(Point),
    /// A segment object, e.g. a highway section.
    Segment(Segment),
    /// A region object, e.g. a state (Figure 3.2), lake or time zone.
    Region(Region),
}

impl SpatialObject {
    /// Minimal bounding rectangle — the `I` of the R-tree leaf entry.
    pub fn mbr(&self) -> Rect {
        match self {
            SpatialObject::Point(p) => Rect::from_point(*p),
            SpatialObject::Segment(s) => s.mbr(),
            SpatialObject::Region(r) => r.mbr(),
        }
    }

    /// A representative point (the object itself, midpoint, or centroid),
    /// used for labeling in pictorial output and as the nearest-neighbour
    /// anchor when packing heterogeneous objects.
    pub fn representative(&self) -> Point {
        match self {
            SpatialObject::Point(p) => *p,
            SpatialObject::Segment(s) => s.midpoint(),
            SpatialObject::Region(r) => r.centroid(),
        }
    }

    /// Exact test: does the object have a point inside window `w`?
    ///
    /// The R-tree's `SEARCH` prunes by MBR; this predicate is the exact
    /// refinement applied to candidates at the leaves.
    pub fn intersects_window(&self, w: &Rect) -> bool {
        match self {
            SpatialObject::Point(p) => w.contains_point(*p),
            SpatialObject::Segment(s) => s.intersects_rect(w),
            SpatialObject::Region(r) => {
                if !r.mbr().intersects(w) {
                    return false;
                }
                // Region boundary crosses the window, a vertex is inside,
                // or the window is wholly inside the region.
                r.vertices().iter().any(|&v| w.contains_point(v))
                    || w.corners().iter().any(|&c| r.contains_point(c))
                    || {
                        let n = r.vertices().len();
                        (0..n).any(|i| {
                            Segment::new(r.vertices()[i], r.vertices()[(i + 1) % n])
                                .intersects_rect(w)
                        })
                    }
            }
        }
    }

    /// Exact test: is the object entirely inside window `w`?
    ///
    /// This is the paper's `WITHIN` of the leaf loop in `SEARCH` (§3.1) and
    /// PSQL's `covered-by` against a constant window.
    pub fn within_window(&self, w: &Rect) -> bool {
        w.covers(&self.mbr())
    }

    /// Area of the object: 0 for points and segments, polygon area for
    /// regions — PSQL's `area` function (§2.1).
    pub fn area(&self) -> f64 {
        match self {
            SpatialObject::Point(_) | SpatialObject::Segment(_) => 0.0,
            SpatialObject::Region(r) => r.area(),
        }
    }

    /// Short class name for display: `point`, `segment` or `region`.
    pub fn class(&self) -> &'static str {
        match self {
            SpatialObject::Point(_) => "point",
            SpatialObject::Segment(_) => "segment",
            SpatialObject::Region(_) => "region",
        }
    }
}

impl fmt::Display for SpatialObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialObject::Point(p) => write!(f, "point {p}"),
            SpatialObject::Segment(s) => write!(f, "segment {s}"),
            SpatialObject::Region(r) => write!(f, "region({} vertices)", r.vertices().len()),
        }
    }
}

impl From<Point> for SpatialObject {
    fn from(p: Point) -> Self {
        SpatialObject::Point(p)
    }
}

impl From<Segment> for SpatialObject {
    fn from(s: Segment) -> Self {
        SpatialObject::Segment(s)
    }
}

impl From<Region> for SpatialObject {
    fn from(r: Region) -> Self {
        SpatialObject::Region(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbr_per_class() {
        let p = SpatialObject::from(Point::new(1.0, 2.0));
        assert_eq!(p.mbr(), Rect::new(1.0, 2.0, 1.0, 2.0));
        let s = SpatialObject::from(Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 3.0)));
        assert_eq!(s.mbr(), Rect::new(0.0, 0.0, 2.0, 3.0));
        let r = SpatialObject::from(Region::rectangle(Rect::new(0.0, 0.0, 5.0, 5.0)));
        assert_eq!(r.mbr(), Rect::new(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn point_window_tests() {
        let p = SpatialObject::from(Point::new(1.0, 1.0));
        let w = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(p.intersects_window(&w));
        assert!(p.within_window(&w));
        assert!(!p.intersects_window(&Rect::new(3.0, 3.0, 4.0, 4.0)));
    }

    #[test]
    fn region_window_containment_cases() {
        let region = SpatialObject::from(Region::rectangle(Rect::new(2.0, 2.0, 6.0, 6.0)));
        // Window inside the region: intersects but not within.
        let inner = Rect::new(3.0, 3.0, 4.0, 4.0);
        assert!(region.intersects_window(&inner));
        assert!(!region.within_window(&inner));
        // Window containing the region.
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(region.within_window(&outer));
        // Window crossing the boundary.
        let crossing = Rect::new(0.0, 3.0, 3.0, 4.0);
        assert!(region.intersects_window(&crossing));
        // Disjoint window.
        assert!(!region.intersects_window(&Rect::new(7.0, 7.0, 8.0, 8.0)));
    }

    #[test]
    fn segment_window_tests() {
        let s = SpatialObject::from(Segment::new(Point::new(0.0, 1.0), Point::new(4.0, 1.0)));
        assert!(s.intersects_window(&Rect::new(1.0, 0.0, 2.0, 2.0)));
        assert!(!s.intersects_window(&Rect::new(1.0, 2.0, 2.0, 3.0)));
        assert!(s.within_window(&Rect::new(-1.0, 0.0, 5.0, 2.0)));
    }

    #[test]
    fn area_function() {
        assert_eq!(SpatialObject::from(Point::new(0.0, 0.0)).area(), 0.0);
        let r = SpatialObject::from(Region::rectangle(Rect::new(0.0, 0.0, 3.0, 2.0)));
        assert_eq!(r.area(), 6.0);
    }

    #[test]
    fn representatives() {
        let s = SpatialObject::from(Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
        assert_eq!(s.representative(), Point::new(1.0, 1.0));
        let r = SpatialObject::from(Region::rectangle(Rect::new(0.0, 0.0, 2.0, 2.0)));
        assert_eq!(r.representative(), Point::new(1.0, 1.0));
    }
}
