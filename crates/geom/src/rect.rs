//! Axis-aligned rectangles — the paper's minimal bounding rectangles (MBRs).
//!
//! # Edge-touching semantics
//!
//! Rectangles are **closed sets**: they include their boundaries, and
//! degenerate (zero-width/zero-height) rectangles are legal and represent
//! points and axis-parallel segments.  Three predicates with deliberately
//! different strengths live here:
//!
//! - [`Rect::intersects`] — shares *at least one point*.  Touching edges,
//!   touching corners, and coincident degenerate rects all count.  This is
//!   the paper's `INTERSECTS`, and it is the MBR-level meaning of PSQL's
//!   `overlapping` operator.
//! - [`Rect::disjoint`] — the exact complement of `intersects`; the
//!   MBR-level meaning of PSQL's `disjoined`.
//! - [`Rect::overlaps`] — *strictly stronger*: requires more than
//!   boundary contact (positive intersection area, or a degenerate rect
//!   interior to the other, or coincident degenerate rects).  Two rects
//!   sharing only an edge or corner — including a point-rect sitting on
//!   another rect's edge — intersect but do **not** overlap.
//!   This predicate is a packing-quality metric (used to certify the
//!   zero-overlap property of Theorem 3.2); it is **not** used to answer
//!   PSQL `overlapping` queries.
//!
//! Every query layer (geom object predicates, R-tree search, the PSQL
//! executor, and the differential oracle in `crates/oracle`) agrees on the
//! closed-set pair `intersects`/`disjoint`.

use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle, closed on all sides.
///
/// This is the paper's minimal bounding rectangle `I` stored in every R-tree
/// entry (`X1, X2, Y1, Y2` in the PASCAL declaration of §3). Degenerate
/// rectangles (zero width and/or height) are allowed and represent points
/// and axis-parallel segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Smallest x coordinate (the paper's `X1`).
    pub min_x: f64,
    /// Smallest y coordinate (`Y1`).
    pub min_y: f64,
    /// Largest x coordinate (`X2`).
    pub max_x: f64,
    /// Largest y coordinate (`Y2`).
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its extremes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `min > max` on either axis or any
    /// coordinate is not finite.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        debug_assert!(min_x <= max_x, "min_x {min_x} > max_x {max_x}");
        debug_assert!(min_y <= max_y, "min_y {min_y} > max_y {max_y}");
        debug_assert!(
            min_x.is_finite() && min_y.is_finite() && max_x.is_finite() && max_y.is_finite(),
            "non-finite rect coordinate"
        );
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Creates the rectangle spanning two corner points (in any order).
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Degenerate rectangle covering a single point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// Minimal bounding rectangle of a non-empty set of points — the
    /// `(P1, P2, …, Pn)` notation of §3.1.
    ///
    /// Returns `None` for an empty iterator.
    pub fn mbr_of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut r = Rect::from_point(first);
        for p in it {
            r = r.union_point(p);
        }
        Some(r)
    }

    /// Minimal bounding rectangle of a non-empty set of rectangles.
    ///
    /// Returns `None` for an empty iterator.
    pub fn mbr_of_rects<I: IntoIterator<Item = Rect>>(rects: I) -> Option<Rect> {
        let mut it = rects.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.union(&r)))
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Area. Zero for degenerate rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (the "margin" used by later R-tree variants; exposed
    /// for ablation experiments).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Smallest rectangle containing `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Point) -> Rect {
        Rect {
            min_x: self.min_x.min(p.x),
            min_y: self.min_y.min(p.y),
            max_x: self.max_x.max(p.x),
            max_y: self.max_y.max(p.y),
        }
    }

    /// Intersection rectangle, or `None` if the rectangles are disjoint.
    ///
    /// Touching boundaries produce a degenerate (zero-area) intersection.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min_x = self.min_x.max(other.min_x);
        let min_y = self.min_y.max(other.min_y);
        let max_x = self.max_x.min(other.max_x);
        let max_y = self.max_y.min(other.max_y);
        if min_x <= max_x && min_y <= max_y {
            Some(Rect {
                min_x,
                min_y,
                max_x,
                max_y,
            })
        } else {
            None
        }
    }

    /// Area of the intersection with `other` (zero when disjoint).
    ///
    /// Total on junk input: the result is always a non-negative,
    /// non-NaN number. NaN coordinates fall out of the `min`/`max`
    /// lattice (IEEE `min`/`max` ignore NaN) and the final guard keeps a
    /// degenerate axis from turning an unbounded one into `0 × ∞ = NaN`.
    #[inline]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max_x.min(other.max_x) - self.min_x.max(other.min_x)).max(0.0);
        let h = (self.max_y.min(other.max_y) - self.min_y.max(other.min_y)).max(0.0);
        if w == 0.0 || h == 0.0 {
            0.0
        } else {
            w * h
        }
    }

    /// `true` if the rectangles share at least one point (the paper's
    /// `INTERSECTS`, used to decide whether to descend into a subtree
    /// during `SEARCH`, §3.1). Touching boundaries count.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// `true` if the rectangles share no point — PSQL's `disjoined`.
    #[inline]
    pub fn disjoint(&self, other: &Rect) -> bool {
        !self.intersects(other)
    }

    /// `true` if `other` lies entirely inside `self` — PSQL's `covering`
    /// viewed from `self`, and the paper's `WITHIN` with the roles swapped.
    #[inline]
    pub fn covers(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// `true` if `self` lies entirely inside `other` — PSQL's `covered-by`
    /// and the `WITHIN` test of the paper's leaf-level search.
    #[inline]
    pub fn covered_by(&self, other: &Rect) -> bool {
        other.covers(self)
    }

    /// `true` if the rectangles share more than boundary contact —
    /// strictly stronger than [`Rect::intersects`].
    ///
    /// Per axis, the shared span must have positive length, or collapse
    /// to a value that is interior to (or the entirety of) *both* spans.
    /// So: positive-area intersection overlaps; a degenerate rect
    /// strictly inside another overlaps; coincident degenerate rects
    /// overlap; but a point-rect on another rect's edge, or two rects
    /// sharing only an edge or corner, merely intersect.
    ///
    /// This is a packing-quality metric (zero-overlap certification,
    /// Theorem 3.2), **not** the predicate behind PSQL's `overlapping`
    /// operator — that one is the closed-set [`Rect::intersects`]; see
    /// the module-level semantics note.
    pub fn overlaps(&self, other: &Rect) -> bool {
        fn span_overlap(a_lo: f64, a_hi: f64, b_lo: f64, b_hi: f64) -> bool {
            let lo = a_lo.max(b_lo);
            let hi = a_hi.min(b_hi);
            if lo > hi {
                return false;
            }
            if lo < hi {
                return true;
            }
            let interior = |l: f64, h: f64| l == h || (l < lo && lo < h);
            interior(a_lo, a_hi) && interior(b_lo, b_hi)
        }
        span_overlap(self.min_x, self.max_x, other.min_x, other.max_x)
            && span_overlap(self.min_y, self.max_y, other.min_y, other.max_y)
    }

    /// `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.min_x <= p.x && p.x <= self.max_x && self.min_y <= p.y && p.y <= self.max_y
    }

    /// Additional area needed to enlarge `self` so that it covers `other`.
    ///
    /// This is the cost function of Guttman's `ChooseLeaf`: INSERT descends
    /// into the subtree whose MBR requires the *least enlargement* (§3.4).
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Minimum squared distance from the point `p` to this rectangle
    /// (zero if `p` is inside). Used by branch-and-bound kNN search.
    #[inline]
    pub fn min_distance_sq(&self, p: Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        dx * dx + dy * dy
    }

    /// Minimum squared distance between two rectangles (zero when they
    /// intersect). Used by the PACK nearest-neighbour function when the
    /// data objects are MBRs of the previous level.
    #[inline]
    pub fn min_distance_sq_rect(&self, other: &Rect) -> f64 {
        let dx = (self.min_x - other.max_x)
            .max(0.0)
            .max(other.min_x - self.max_x);
        let dy = (self.min_y - other.max_y)
            .max(0.0)
            .max(other.min_y - self.max_y);
        dx * dx + dy * dy
    }

    /// The four corner points, counter-clockwise from the lower-left.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// `true` if the rectangle has zero area.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.3},{:.3}]x[{:.3},{:.3}]",
            self.min_x, self.max_x, self.min_y, self.max_y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn area_and_margin() {
        let x = r(0.0, 0.0, 4.0, 3.0);
        assert_eq!(x.area(), 12.0);
        assert_eq!(x.margin(), 7.0);
        assert_eq!(x.center(), Point::new(2.0, 1.5));
    }

    #[test]
    fn degenerate_point_rect() {
        let x = Rect::from_point(Point::new(2.0, 5.0));
        assert_eq!(x.area(), 0.0);
        assert!(x.is_degenerate());
        assert!(x.contains_point(Point::new(2.0, 5.0)));
        assert!(!x.contains_point(Point::new(2.0, 5.1)));
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.covers(&a) && u.covers(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn intersection_of_overlapping() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.intersection_area(&b), 1.0);
        assert!(a.intersects(&b));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn touching_rects_intersect_but_do_not_overlap() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_area(&b), 0.0);
        assert!(!a.overlaps(&b));
        assert!(!a.disjoint(&b));
    }

    #[test]
    fn zero_area_rects_follow_closed_semantics() {
        // A point-rect on another rect's edge: intersects, not overlaps.
        let a = r(0.0, 0.0, 2.0, 2.0);
        let p = r(2.0, 1.0, 2.0, 1.0);
        assert!(a.intersects(&p));
        assert!(!a.disjoint(&p));
        assert!(!a.overlaps(&p));
        // A point-rect strictly inside: covered, hence overlaps too.
        let q = r(1.0, 1.0, 1.0, 1.0);
        assert!(a.intersects(&q));
        assert!(a.covers(&q));
        assert!(a.overlaps(&q));
        // Two coincident point-rects cover each other, so they overlap.
        assert!(q.intersects(&q));
        assert!(q.overlaps(&q));
        // Corner-only contact: intersects, never overlaps.
        let c = r(2.0, 2.0, 4.0, 4.0);
        assert!(a.intersects(&c));
        assert!(!a.overlaps(&c));
        assert!(!a.disjoint(&c));
    }

    #[test]
    fn disjoint_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        assert!(a.disjoint(&b));
        assert_eq!(a.intersection(&b), None);
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn covers_is_reflexive_and_antisymmetric_on_distinct() {
        let a = r(0.0, 0.0, 4.0, 4.0);
        let b = r(1.0, 1.0, 2.0, 2.0);
        assert!(a.covers(&a));
        assert!(a.covers(&b));
        assert!(b.covered_by(&a));
        assert!(!b.covers(&a));
    }

    #[test]
    fn enlargement_cost() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let inside = r(0.5, 0.5, 1.0, 1.0);
        assert_eq!(a.enlargement(&inside), 0.0);
        let outside = r(3.0, 0.0, 4.0, 2.0);
        // union is [0,4]x[0,2] = 8; a.area = 4
        assert_eq!(a.enlargement(&outside), 4.0);
    }

    #[test]
    fn min_distance_to_point() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_distance_sq(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_distance_sq(Point::new(5.0, 2.0)), 9.0);
        assert_eq!(a.min_distance_sq(Point::new(5.0, 6.0)), 25.0);
    }

    #[test]
    fn min_distance_between_rects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        assert_eq!(a.min_distance_sq_rect(&b), 9.0 + 16.0);
        let c = r(0.5, 0.5, 3.0, 3.0);
        assert_eq!(a.min_distance_sq_rect(&c), 0.0);
    }

    #[test]
    fn mbr_of_points_spans_all() {
        let pts = [
            Point::new(3.0, 1.0),
            Point::new(-1.0, 4.0),
            Point::new(2.0, -2.0),
        ];
        let m = Rect::mbr_of_points(pts).unwrap();
        assert_eq!(m, r(-1.0, -2.0, 3.0, 4.0));
        assert!(pts.iter().all(|&p| m.contains_point(p)));
        assert!(Rect::mbr_of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn mbr_of_rects_spans_all() {
        let rs = [r(0.0, 0.0, 1.0, 1.0), r(5.0, -3.0, 6.0, 0.0)];
        let m = Rect::mbr_of_rects(rs).unwrap();
        assert_eq!(m, r(0.0, -3.0, 6.0, 1.0));
        assert!(Rect::mbr_of_rects(std::iter::empty()).is_none());
    }

    #[test]
    fn from_corners_normalizes() {
        let a = Rect::from_corners(Point::new(3.0, 1.0), Point::new(0.0, 4.0));
        assert_eq!(a, r(0.0, 1.0, 3.0, 4.0));
    }

    #[test]
    fn intersection_area_degenerate_rects() {
        let unit = r(0.0, 0.0, 1.0, 1.0);
        // A point rectangle inside, on the edge, and outside.
        let point = r(0.5, 0.5, 0.5, 0.5);
        assert_eq!(point.intersection_area(&unit), 0.0);
        assert_eq!(unit.intersection_area(&point), 0.0);
        assert_eq!(r(1.0, 0.5, 1.0, 0.5).intersection_area(&unit), 0.0);
        assert_eq!(r(2.0, 2.0, 2.0, 2.0).intersection_area(&unit), 0.0);
        // A zero-width line segment overlapping the interior.
        assert_eq!(r(0.5, -1.0, 0.5, 2.0).intersection_area(&unit), 0.0);
        // Degenerate-but-touching still counts as intersecting.
        assert!(point.intersects(&unit));
    }

    #[test]
    fn intersection_area_zero_times_infinity_is_zero() {
        // Regression: a zero-width intersection crossed with an unbounded
        // axis used to produce `0.0 × ∞ = NaN`. Unbounded rects can only
        // arise through the struct literal (Rect::new debug-asserts
        // finiteness), which is exactly how untrusted data enters.
        let line = Rect {
            min_x: 0.5,
            min_y: f64::NEG_INFINITY,
            max_x: 0.5,
            max_y: f64::INFINITY,
        };
        let tall = Rect {
            min_x: 0.0,
            min_y: f64::NEG_INFINITY,
            max_x: 1.0,
            max_y: f64::INFINITY,
        };
        let area = line.intersection_area(&tall);
        assert_eq!(area, 0.0, "got {area}");
        // Two unbounded rects legitimately intersect in infinite area.
        assert_eq!(tall.intersection_area(&tall), f64::INFINITY);
    }

    #[test]
    fn intersection_area_nan_inputs_never_return_nan() {
        let unit = r(0.0, 0.0, 1.0, 1.0);
        let cases = [
            Rect {
                min_x: f64::NAN,
                min_y: 0.0,
                max_x: 0.5,
                max_y: 1.0,
            },
            Rect {
                min_x: 0.0,
                min_y: 0.0,
                max_x: f64::NAN,
                max_y: 1.0,
            },
            Rect {
                min_x: f64::NAN,
                min_y: f64::NAN,
                max_x: f64::NAN,
                max_y: f64::NAN,
            },
        ];
        for (i, bad) in cases.iter().enumerate() {
            for (a, b) in [(bad, &unit), (&unit, bad)] {
                let area = a.intersection_area(b);
                assert!(!area.is_nan(), "case {i}: NaN leaked");
                assert!(area >= 0.0, "case {i}: negative area {area}");
            }
        }
    }
}
