//! Exact area computations over sets of rectangles.
//!
//! Section 3.1 defines the two quality measures of an R-tree:
//!
//! * **coverage** — "the total area of all the MBRs of all leaf R-tree
//!   nodes" ([`total_area`]; note this is a *sum*, so it can exceed the
//!   area of the union when leaves overlap);
//! * **overlap** — "the total area contained within two or more leaf
//!   MBRs" ([`overlap_area`]).
//!
//! Both are computed *exactly* by coordinate compression: the distinct x-
//! and y-coordinates of the rectangle corners induce a grid whose cells are
//! each either fully covered or fully uncovered by any input rectangle, so
//! per-cell cover counts (accumulated with a 2-D difference array) give
//! exact areas. This keeps Table 1's `C` and `O` columns exact rather than
//! sampled.

use crate::rect::Rect;

/// Sum of the areas of the rectangles — the paper's **coverage** when
/// applied to the leaf MBRs of an R-tree.
pub fn total_area(rects: &[Rect]) -> f64 {
    rects.iter().map(Rect::area).sum()
}

/// Area of the union of the rectangles (each covered point counted once).
pub fn union_area(rects: &[Rect]) -> f64 {
    area_where(rects, |count| count >= 1)
}

/// Area of the set of points covered by **two or more** rectangles — the
/// paper's **overlap** when applied to leaf MBRs.
pub fn overlap_area(rects: &[Rect]) -> f64 {
    area_where(rects, |count| count >= 2)
}

/// Area of the set of points whose cover count satisfies `pred`.
///
/// Exact up to floating-point rounding; runs in
/// `O(n log n + cells)` where `cells ≤ (2n)²`.
pub fn area_where<F: Fn(u32) -> bool>(rects: &[Rect], pred: F) -> f64 {
    if rects.is_empty() {
        return 0.0;
    }
    // Coordinate compression.
    let mut xs: Vec<f64> = Vec::with_capacity(rects.len() * 2);
    let mut ys: Vec<f64> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        xs.push(r.min_x);
        xs.push(r.max_x);
        ys.push(r.min_y);
        ys.push(r.max_y);
    }
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    if xs.len() < 2 || ys.len() < 2 {
        return 0.0; // All rectangles degenerate to a line or point.
    }
    let nx = xs.len() - 1; // cell columns
    let ny = ys.len() - 1; // cell rows

    // 2-D difference array over cells; +1 at the low corner of each
    // rectangle's cell range, compensating -1 just past the high corner.
    let mut diff = vec![0i32; (nx + 1) * (ny + 1)];
    let idx = |cx: usize, cy: usize| cy * (nx + 1) + cx;
    for r in rects {
        if r.area() == 0.0 {
            continue; // Degenerate rectangles contribute no area.
        }
        let x0 = xs.partition_point(|&v| v < r.min_x);
        let x1 = xs.partition_point(|&v| v < r.max_x);
        let y0 = ys.partition_point(|&v| v < r.min_y);
        let y1 = ys.partition_point(|&v| v < r.max_y);
        debug_assert!(x0 < x1 && y0 < y1);
        diff[idx(x0, y0)] += 1;
        diff[idx(x1, y0)] -= 1;
        diff[idx(x0, y1)] -= 1;
        diff[idx(x1, y1)] += 1;
    }

    // Prefix-sum into cover counts and accumulate qualifying cell areas.
    let mut area = 0.0;
    let mut counts = vec![0i32; nx]; // running column sums for current row
    let mut row_prefix = vec![0i32; nx];
    for cy in 0..ny {
        // Add this row's diff contributions (prefix over x).
        let mut run = 0i32;
        for cx in 0..nx {
            run += diff[idx(cx, cy)];
            row_prefix[cx] = run;
        }
        let cell_h = ys[cy + 1] - ys[cy];
        for cx in 0..nx {
            counts[cx] += row_prefix[cx];
            let c = counts[cx];
            debug_assert!(c >= 0, "negative cover count");
            if pred(c as u32) {
                area += (xs[cx + 1] - xs[cx]) * cell_h;
            }
        }
    }
    area
}

/// Pairwise-intersection total: `Σ_{i<j} area(rᵢ ∩ rⱼ)`.
///
/// An alternative overlap reading that counts multiply-covered area with
/// multiplicity; exposed so experiments can report both interpretations.
pub fn pairwise_intersection_area(rects: &[Rect]) -> f64 {
    let mut acc = 0.0;
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            acc += rects[i].intersection_area(&rects[j]);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Rect {
        Rect::new(a, b, c, d)
    }

    #[test]
    fn empty_set() {
        assert_eq!(total_area(&[]), 0.0);
        assert_eq!(union_area(&[]), 0.0);
        assert_eq!(overlap_area(&[]), 0.0);
    }

    #[test]
    fn single_rect() {
        let rs = [r(0.0, 0.0, 2.0, 3.0)];
        assert_eq!(total_area(&rs), 6.0);
        assert_eq!(union_area(&rs), 6.0);
        assert_eq!(overlap_area(&rs), 0.0);
    }

    #[test]
    fn disjoint_rects() {
        let rs = [r(0.0, 0.0, 1.0, 1.0), r(2.0, 0.0, 3.0, 1.0)];
        assert_eq!(total_area(&rs), 2.0);
        assert_eq!(union_area(&rs), 2.0);
        assert_eq!(overlap_area(&rs), 0.0);
    }

    #[test]
    fn touching_rects_have_zero_overlap() {
        let rs = [r(0.0, 0.0, 1.0, 1.0), r(1.0, 0.0, 2.0, 1.0)];
        assert_eq!(union_area(&rs), 2.0);
        assert_eq!(overlap_area(&rs), 0.0);
    }

    #[test]
    fn overlapping_pair() {
        let rs = [r(0.0, 0.0, 2.0, 2.0), r(1.0, 1.0, 3.0, 3.0)];
        assert_eq!(total_area(&rs), 8.0);
        assert_eq!(union_area(&rs), 7.0);
        assert_eq!(overlap_area(&rs), 1.0);
        assert_eq!(pairwise_intersection_area(&rs), 1.0);
    }

    #[test]
    fn triple_overlap_counted_once_in_overlap_area() {
        // Three identical rects: overlap region covered 3 times but its
        // area counts once; pairwise counts it 3 times.
        let rs = [r(0.0, 0.0, 1.0, 1.0); 3];
        assert_eq!(union_area(&rs), 1.0);
        assert_eq!(overlap_area(&rs), 1.0);
        assert_eq!(pairwise_intersection_area(&rs), 3.0);
    }

    #[test]
    fn nested_rects() {
        let rs = [r(0.0, 0.0, 4.0, 4.0), r(1.0, 1.0, 2.0, 2.0)];
        assert_eq!(union_area(&rs), 16.0);
        assert_eq!(overlap_area(&rs), 1.0);
    }

    #[test]
    fn degenerate_rects_ignored() {
        let rs = [r(0.0, 0.0, 0.0, 5.0), r(1.0, 1.0, 2.0, 2.0)];
        assert_eq!(union_area(&rs), 1.0);
        assert_eq!(overlap_area(&rs), 0.0);
    }

    #[test]
    fn all_degenerate() {
        let rs = [r(0.0, 0.0, 0.0, 5.0), r(1.0, 1.0, 1.0, 1.0)];
        assert_eq!(union_area(&rs), 0.0);
    }

    #[test]
    fn plus_shape_cross() {
        // Horizontal bar [0,3]x[1,2], vertical bar [1,2]x[0,3].
        let rs = [r(0.0, 1.0, 3.0, 2.0), r(1.0, 0.0, 2.0, 3.0)];
        assert_eq!(union_area(&rs), 3.0 + 3.0 - 1.0);
        assert_eq!(overlap_area(&rs), 1.0);
    }

    #[test]
    fn area_where_exact_counts() {
        // Three stacked rects sharing [1,2]x[0,1].
        let rs = [
            r(0.0, 0.0, 2.0, 1.0),
            r(1.0, 0.0, 3.0, 1.0),
            r(1.0, 0.0, 2.0, 1.0),
        ];
        assert_eq!(area_where(&rs, |c| c >= 3), 1.0);
        assert_eq!(area_where(&rs, |c| c == 1), 2.0);
        assert_eq!(union_area(&rs), 3.0);
    }

    #[test]
    fn matches_monte_carlo_on_random_sets() {
        // Deterministic pseudo-random rects; verify union via a fine grid.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let rects: Vec<Rect> = (0..20)
            .map(|_| {
                let x0 = next() * 80.0;
                let y0 = next() * 80.0;
                Rect::new(x0, y0, x0 + next() * 20.0, y0 + next() * 20.0)
            })
            .collect();
        // Grid check at resolution 0.5 over [0,100]^2.
        let step = 0.5;
        let mut grid_union = 0.0;
        let mut grid_overlap = 0.0;
        let cells = (100.0 / step) as usize;
        for i in 0..cells {
            for j in 0..cells {
                let cx = (i as f64 + 0.5) * step;
                let cy = (j as f64 + 0.5) * step;
                let p = crate::point::Point::new(cx, cy);
                let cnt = rects.iter().filter(|r| r.contains_point(p)).count();
                if cnt >= 1 {
                    grid_union += step * step;
                }
                if cnt >= 2 {
                    grid_overlap += step * step;
                }
            }
        }
        let exact_union = union_area(&rects);
        let exact_overlap = overlap_area(&rects);
        assert!(
            (exact_union - grid_union).abs() < exact_union * 0.05 + 5.0,
            "union {exact_union} vs grid {grid_union}"
        );
        assert!(
            (exact_overlap - grid_overlap).abs() < exact_overlap * 0.05 + 5.0,
            "overlap {exact_overlap} vs grid {grid_overlap}"
        );
    }
}
