//! Geometry primitives for packed R-trees and pictorial databases.
//!
//! This crate is the geometric substrate of the packed R-tree reproduction
//! (Roussopoulos & Leifker, SIGMOD 1985). It provides:
//!
//! * [`Point`], [`Rect`] (minimal bounding rectangles), [`Segment`] and
//!   polygonal [`Region`] objects — the paper's "point", "line segment" and
//!   "region" spatial classes (§3);
//! * the spatial comparison predicates behind PSQL's operators
//!   (`covers`, `covered-by`, `overlaps`, `disjoined`, §2.2), exposed as
//!   [`SpatialObject`] methods and [`Rect`] predicates;
//! * rotation transforms used by Lemma 3.1 / Theorem 3.2
//!   ([`transform::rotation_with_distinct_x`]);
//! * exact union/overlap area computation over rectangle sets
//!   ([`rectset::union_area`], [`rectset::overlap_area`]) used for the
//!   paper's *coverage* and *overlap* metrics (§3.1, Table 1).
//!
//! All coordinates are `f64`. Rectangles are closed: boundaries touch.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod distance;
pub mod object;
pub mod point;
pub mod rect;
pub mod rectset;
pub mod region;
pub mod segment;
pub mod transform;

pub use object::SpatialObject;
pub use point::Point;
pub use rect::Rect;
pub use region::Region;
pub use segment::Segment;
