//! Polygonal regions — states, lakes and time zones (§2.1, Figure 3.2).

use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// A simple polygon given by its vertices in order (either winding).
///
/// Regions are the third spatial class of §3. The R-tree stores only their
/// MBRs; the full boundary is kept with the object so that exact predicates
/// (`contains_point`, area) can refine the index's candidate set, exactly as
/// the paper prescribes: "the possibly non-atomic spatial objects stored at
/// the leaf level are considered atomic, as far as the search is concerned".
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    vertices: Vec<Point>,
    mbr: Rect,
}

/// Error returned when constructing a [`Region`] from fewer than 3 vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegenerateRegion;

impl fmt::Display for DegenerateRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("a region needs at least three vertices")
    }
}

impl std::error::Error for DegenerateRegion {}

impl Region {
    /// Creates a region from its boundary vertices.
    ///
    /// # Errors
    ///
    /// Returns [`DegenerateRegion`] if fewer than three vertices are given.
    pub fn new(vertices: Vec<Point>) -> Result<Self, DegenerateRegion> {
        if vertices.len() < 3 {
            return Err(DegenerateRegion);
        }
        let mbr = Rect::mbr_of_points(vertices.iter().copied()).expect("non-empty");
        Ok(Region { vertices, mbr })
    }

    /// Axis-aligned rectangular region.
    pub fn rectangle(r: Rect) -> Self {
        let c = r.corners();
        Region {
            vertices: c.to_vec(),
            mbr: r,
        }
    }

    /// The boundary vertices.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Minimal bounding rectangle (cached at construction).
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Signed area by the shoelace formula: positive for counter-clockwise
    /// winding, negative for clockwise.
    pub fn signed_area(&self) -> f64 {
        let n = self.vertices.len();
        let mut acc = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            acc += p.cross(q);
        }
        acc / 2.0
    }

    /// Absolute area — PSQL's `area` pictorial function (§2.1).
    #[inline]
    pub fn area(&self) -> f64 {
        self.signed_area().abs()
    }

    /// Perimeter length of the boundary.
    pub fn perimeter(&self) -> f64 {
        let n = self.vertices.len();
        (0..n)
            .map(|i| self.vertices[i].distance(self.vertices[(i + 1) % n]))
            .sum()
    }

    /// Centroid of the polygon (area-weighted).
    ///
    /// Falls back to the vertex average for (near-)zero-area polygons and
    /// for self-intersecting boundaries whose positive and negative loop
    /// areas nearly cancel (the weighted formula can then land outside
    /// the polygon's own bounding box).
    pub fn centroid(&self) -> Point {
        let vertex_average = {
            let n = self.vertices.len() as f64;
            let sum = self.vertices.iter().fold(Point::ORIGIN, |acc, &p| acc + p);
            Point::new(sum.x / n, sum.y / n)
        };
        let a = self.signed_area();
        if a.abs() < 1e-12 {
            return vertex_average;
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        let c = Point::new(cx / (6.0 * a), cy / (6.0 * a));
        if self.mbr.contains_point(c) {
            c
        } else {
            vertex_average
        }
    }

    /// Point-in-polygon by ray casting; boundary points count as inside.
    pub fn contains_point(&self, p: Point) -> bool {
        if !self.mbr.contains_point(p) {
            return false;
        }
        let n = self.vertices.len();
        // Boundary check first so that edge/vertex hits are deterministic.
        // `Segment::contains_point` is the exact orientation test — the
        // distance-based check loses exact edge hits to projection
        // rounding (e.g. a point on a vertical edge at a non-dyadic
        // fraction of its length).
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if crate::segment::Segment::new(a, b).contains_point(p) {
                return true;
            }
        }
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if (a.y > p.y) != (b.y > p.y) {
                let x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
                if p.x < x_cross {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Rotates every vertex counter-clockwise about the origin.
    pub fn rotated(&self, angle: f64) -> Region {
        let vertices: Vec<Point> = self.vertices.iter().map(|p| p.rotated(angle)).collect();
        let mbr = Rect::mbr_of_points(vertices.iter().copied()).expect("non-empty");
        Region { vertices, mbr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Region {
        Region::rectangle(Rect::new(0.0, 0.0, 1.0, 1.0))
    }

    fn triangle() -> Region {
        Region::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap()
    }

    #[test]
    fn too_few_vertices_rejected() {
        assert_eq!(
            Region::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(DegenerateRegion)
        );
    }

    #[test]
    fn square_area_and_perimeter() {
        let sq = unit_square();
        assert_eq!(sq.area(), 1.0);
        assert_eq!(sq.perimeter(), 4.0);
        assert_eq!(sq.mbr(), Rect::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn triangle_area() {
        assert_eq!(triangle().area(), 6.0);
    }

    #[test]
    fn winding_flips_sign_not_area() {
        let ccw = triangle();
        let cw = Region::new(ccw.vertices().iter().rev().copied().collect()).unwrap();
        assert_eq!(ccw.signed_area(), -cw.signed_area());
        assert_eq!(ccw.area(), cw.area());
    }

    #[test]
    fn centroid_of_square() {
        let sq = unit_square();
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn point_in_polygon() {
        let t = triangle();
        assert!(t.contains_point(Point::new(1.0, 1.0)));
        assert!(!t.contains_point(Point::new(3.0, 3.0)));
        // Boundary points count as inside.
        assert!(t.contains_point(Point::new(2.0, 0.0)));
        assert!(t.contains_point(Point::new(0.0, 0.0)));
        // Outside the MBR entirely.
        assert!(!t.contains_point(Point::new(-1.0, -1.0)));
    }

    #[test]
    fn concave_polygon_containment() {
        // A "U" shape: points in the notch are outside.
        let u = Region::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap();
        assert!(u.contains_point(Point::new(1.0, 3.0)));
        assert!(u.contains_point(Point::new(5.0, 3.0)));
        assert!(!u.contains_point(Point::new(3.0, 3.5)));
        assert!(u.contains_point(Point::new(3.0, 1.0)));
    }

    #[test]
    fn rotation_preserves_area() {
        let t = triangle();
        let r = t.rotated(1.1);
        assert!((r.area() - 6.0).abs() < 1e-9);
    }
}
