//! Determinism guarantees of the parallel PACK pipeline.
//!
//! The contract is strict: `pack_parallel_with(items, cfg, strategy, t)`
//! must be **byte-identical** to the sequential `pack_with` for every
//! thread count, every strategy, and every n — including sizes that are
//! not multiples of `M` and sizes large enough that the parallel path
//! actually engages (the engine falls back to one thread below its
//! internal cutoff).

use packed_rtree_core::grouping::{self, PackStrategy, SlabPlan};
use packed_rtree_core::{pack_parallel_with, pack_with};
use proptest::prelude::*;
use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTreeConfig};

fn points(n: u64, seed: u64) -> Vec<(Rect, ItemId)> {
    let mut s = seed;
    (0..n)
        .map(|i| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((s >> 33) % 1_000_000) as f64 / 1000.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((s >> 33) % 1_000_000) as f64 / 1000.0;
            (Rect::from_point(Point::new(x, y)), ItemId(i))
        })
        .collect()
}

/// The headline guarantee: parallel output equals sequential output as a
/// value (`RTree: PartialEq` covers the arena, root, config and length —
/// i.e. the exact node layout), at thread counts above, at, and below the
/// slab count, with n chosen indivisible by M.
#[test]
fn parallel_equals_sequential_all_strategies_and_threads() {
    // 10_007 is prime: not divisible by M=4, bigger than the parallel
    // cutoff, and leaves a partial group on every level.
    let items = points(10_007, 42);
    for strategy in PackStrategy::ALL {
        let seq = pack_with(items.clone(), RTreeConfig::PAPER, strategy);
        seq.validate_with(false).unwrap();
        for threads in [1, 2, 4, 8] {
            let par = pack_parallel_with(items.clone(), RTreeConfig::PAPER, strategy, threads);
            assert_eq!(
                par, seq,
                "{strategy:?} at {threads} threads diverged from sequential"
            );
        }
    }
}

/// Same guarantee at a larger branching factor (fewer, fatter slabs) and
/// a small-n case that exercises the single-slab fast path.
#[test]
fn parallel_equals_sequential_other_configs() {
    for (n, m) in [(4_099u64, 64usize), (257, 4), (5_000, 16)] {
        let items = points(n, n);
        let config = RTreeConfig::with_branching(m);
        for strategy in PackStrategy::ALL {
            let seq = pack_with(items.clone(), config, strategy);
            for threads in [2, 8] {
                let par = pack_parallel_with(items.clone(), config, strategy, threads);
                assert_eq!(par, seq, "{strategy:?} n={n} M={m} t={threads}");
            }
        }
    }
}

/// Thread count does not leak into the plan: two parallel runs at
/// different thread counts agree with each other on a size straddling
/// several slabs.
#[test]
fn thread_count_is_invisible() {
    let items = points(20_011, 7);
    for strategy in [
        PackStrategy::XSort,
        PackStrategy::Hilbert,
        PackStrategy::SortTileRecursive,
    ] {
        let a = pack_parallel_with(items.clone(), RTreeConfig::PAPER, strategy, 3);
        let b = pack_parallel_with(items.clone(), RTreeConfig::PAPER, strategy, 7);
        assert_eq!(a, b, "{strategy:?}");
    }
}

fn arb_strategy() -> impl Strategy<Value = PackStrategy> {
    prop::sample::select(PackStrategy::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slab-boundary grouping preserves the partition invariant: the
    /// groups cover every input index exactly once, never exceed `m`,
    /// and the group count matches the plan's prediction — the property
    /// the parallel id pre-assignment rests on.
    #[test]
    fn slab_grouping_partitions(
        n in 1usize..600,
        m in 2usize..12,
        seed in 0u64..1_000,
    ) {
        let rects: Vec<Rect> = points(n as u64, seed).into_iter().map(|(r, _)| r).collect();
        for strategy in PackStrategy::ALL {
            let groups = grouping::group(strategy, &rects, m);
            let plan = SlabPlan::new(strategy, n, m);
            prop_assert_eq!(groups.len(), plan.total_groups(), "{:?}", strategy);
            prop_assert_eq!(groups.len(), n.div_ceil(m), "{:?}", strategy);
            let mut seen = vec![false; n];
            for g in &groups {
                prop_assert!(!g.is_empty() && g.len() <= m, "{:?}: group of {}", strategy, g.len());
                for &i in g {
                    prop_assert!(!seen[i], "{:?}: duplicate index {}", strategy, i);
                    seen[i] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s), "{:?}: index dropped", strategy);
        }
    }

    /// The slab plan itself tiles `0..n`: ranges are contiguous,
    /// disjoint, exhaustive, and every slab but the last is a multiple
    /// of `m` long (the alignment that makes group ids predictable).
    #[test]
    fn slab_plan_tiles_input(
        n in 1usize..100_000,
        m in 2usize..65,
        strategy in arb_strategy(),
    ) {
        let plan = SlabPlan::new(strategy, n, m);
        let mut next = 0usize;
        let mut groups = 0usize;
        for k in 0..plan.slab_count() {
            let range = plan.slab_range(k);
            prop_assert_eq!(range.start, next);
            prop_assert!(!range.is_empty());
            if k + 1 < plan.slab_count() {
                prop_assert_eq!(range.len() % m, 0, "non-terminal slab misaligned");
            }
            prop_assert_eq!(plan.group_offset(k), groups);
            groups += plan.groups_in_slab(k);
            next = range.end;
        }
        prop_assert_eq!(next, n);
        prop_assert_eq!(groups, plan.total_groups());
        prop_assert_eq!(groups, n.div_ceil(m));
    }

    /// End-to-end determinism on arbitrary (duplicated, collinear,
    /// degenerate) point sets: parallel equals sequential.
    #[test]
    fn parallel_matches_sequential_on_arbitrary_inputs(
        coords in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..300),
        strategy in arb_strategy(),
    ) {
        let items: Vec<(Rect, ItemId)> = coords
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (Rect::from_point(Point::new(x, y)), ItemId(i as u64)))
            .collect();
        let seq = pack_with(items.clone(), RTreeConfig::PAPER, strategy);
        let par = pack_parallel_with(items, RTreeConfig::PAPER, strategy, 4);
        prop_assert_eq!(par, seq);
    }
}
