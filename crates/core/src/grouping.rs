//! Grouping strategies: how one level's entries are partitioned into
//! nodes.
//!
//! Every packing algorithm in this crate is "sort/select groups of `M`,
//! recurse on the MBRs"; they differ only in this partition step. The
//! [`group`] function dispatches on [`PackStrategy`]
//! (re-exported from the [`mod@crate::pack`] module).

use crate::hilbert;
use crate::nn::{GridNeighbors, NaiveNeighbors, NeighborSet};
use rtree_geom::{Point, Rect};

/// The available packing strategies (see crate docs for provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackStrategy {
    /// The paper's PACK (§3.3): ascending-x order, groups filled by
    /// repeated nearest-neighbour selection (grid-accelerated).
    #[default]
    NearestNeighbor,
    /// PACK with the pseudocode's literal O(n²) nearest-neighbour scan;
    /// identical output to [`PackStrategy::NearestNeighbor`] up to
    /// distance ties.
    NearestNeighborNaive,
    /// Plain ascending-x runs of `M` — the paper's sort criterion without
    /// the NN refinement; poor on the y axis, used as an ablation.
    XSort,
    /// Sort-Tile-Recursive (Leutenegger, Lopez & Edgington 1997).
    SortTileRecursive,
    /// Hilbert-curve order (Kamel & Faloutsos 1993).
    Hilbert,
}

impl PackStrategy {
    /// All strategies, for sweeps and ablations.
    pub const ALL: [PackStrategy; 5] = [
        PackStrategy::NearestNeighbor,
        PackStrategy::NearestNeighborNaive,
        PackStrategy::XSort,
        PackStrategy::SortTileRecursive,
        PackStrategy::Hilbert,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PackStrategy::NearestNeighbor => "pack-nn",
            PackStrategy::NearestNeighborNaive => "pack-nn-naive",
            PackStrategy::XSort => "pack-xsort",
            PackStrategy::SortTileRecursive => "pack-str",
            PackStrategy::Hilbert => "pack-hilbert",
        }
    }
}

/// Target number of groups per slab: slabs hold `SLAB_GROUPS × m`
/// entries (rounded to the strategy's alignment unit), so small inputs
/// fit in a single slab and large levels decompose into many independent
/// grouping problems.
pub const SLAB_GROUPS: usize = 512;

/// A deterministic partition of one level's sorted entries into
/// independent, contiguous *slabs*.
///
/// The boundaries are a pure function of `(strategy, n, m)` — never of
/// thread count — which is what makes the parallel packer bit-identical
/// to the sequential one: both group slab by slab, and every slab's
/// group count (hence its nodes' arena ids) is known before any grouping
/// runs. Every slab except possibly the last holds a multiple of `m`
/// entries, so a slab of `e` entries always produces exactly `⌈e/m⌉`
/// groups, all full except possibly the final group of the final slab.
#[derive(Debug, Clone, Copy)]
pub struct SlabPlan {
    n: usize,
    m: usize,
    slab_len: usize,
    /// STR's own x-slab capacity `s·m` (0 for the other strategies);
    /// `slab_len` is a multiple of it, so slab-local tiling equals
    /// global tiling.
    str_capacity: usize,
}

impl SlabPlan {
    /// Plans the slab decomposition for `n` entries grouped by `m` under
    /// `strategy`. `n` must be non-zero.
    pub fn new(strategy: PackStrategy, n: usize, m: usize) -> SlabPlan {
        assert!(m >= 1, "branching factor must be at least 1");
        assert!(n >= 1, "cannot plan zero entries");
        let (unit, str_capacity) = match strategy {
            PackStrategy::SortTileRecursive => {
                // S = ⌈√⌈n/m⌉⌉ vertical slabs of s·m entries each
                // (Leutenegger et al.), computed from the *global* n.
                let s = (n.div_ceil(m) as f64).sqrt().ceil() as usize;
                (s.max(1) * m, s.max(1) * m)
            }
            _ => (m, 0),
        };
        let target = SLAB_GROUPS.saturating_mul(m);
        let slab_len = (target / unit).max(1).saturating_mul(unit);
        SlabPlan {
            n,
            m,
            slab_len,
            str_capacity,
        }
    }

    /// Number of entries a full slab holds (always a multiple of `m`).
    #[inline]
    pub fn slab_len(&self) -> usize {
        self.slab_len
    }

    /// The grouping arity `m` this plan was built for.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Number of slabs.
    #[inline]
    pub fn slab_count(&self) -> usize {
        self.n.div_ceil(self.slab_len)
    }

    /// Entry range (into the level's sort order) of slab `k`.
    #[inline]
    pub fn slab_range(&self, k: usize) -> std::ops::Range<usize> {
        let lo = k * self.slab_len;
        lo..((lo + self.slab_len).min(self.n))
    }

    /// Number of groups slab `k` produces.
    #[inline]
    pub fn groups_in_slab(&self, k: usize) -> usize {
        self.slab_range(k).len().div_ceil(self.m)
    }

    /// Index of slab `k`'s first group within the level's group sequence.
    #[inline]
    pub fn group_offset(&self, k: usize) -> usize {
        // Every slab before k is full and slab_len is a multiple of m.
        k * (self.slab_len / self.m)
    }

    /// Total groups across all slabs: `⌈n/m⌉`.
    #[inline]
    pub fn total_groups(&self) -> usize {
        self.n.div_ceil(self.m)
    }

    /// STR's x-slab capacity (`s·m`), 0 for non-STR plans.
    #[inline]
    pub fn str_capacity(&self) -> usize {
        self.str_capacity
    }
}

/// Partitions `rects` into groups of at most `m` indices each, according
/// to `strategy`. Groups are returned in construction order; every index
/// appears in exactly one group; all groups except possibly the last are
/// full.
///
/// Grouping is slab-local under the [`SlabPlan`]: the level's sort order
/// is cut at deterministic boundaries and each slab is grouped
/// independently — identically to how the parallel packer distributes
/// the slabs over worker threads.
pub fn group(strategy: PackStrategy, rects: &[Rect], m: usize) -> Vec<Vec<usize>> {
    assert!(m >= 1);
    if rects.is_empty() {
        return Vec::new();
    }
    let ord = order(strategy, rects);
    let plan = SlabPlan::new(strategy, rects.len(), m);
    let mut groups = Vec::with_capacity(plan.total_groups());
    for k in 0..plan.slab_count() {
        groups.extend(group_slab(strategy, rects, &ord[plan.slab_range(k)], &plan));
    }
    groups
}

/// The level's global sort order under `strategy`: ascending center x
/// (ties by y then index) for the paper-family strategies — "Order
/// objects of DLIST by some spatial criterion, e.g. ascending
/// x-coordinate" (§3.3) — or Hilbert-curve order of the centers.
pub fn order(strategy: PackStrategy, rects: &[Rect]) -> Vec<usize> {
    let mut ord: Vec<usize> = (0..rects.len()).collect();
    match strategy {
        PackStrategy::Hilbert => {
            let keys = hilbert_keys(rects);
            ord.sort_unstable_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
        }
        _ => ord.sort_unstable_by(|&a, &b| x_cmp(rects, a, b)),
    }
    ord
}

/// The ascending-x comparator (ties by y then index, for a total order
/// free of equal elements). Shared with the parallel sort so both
/// produce the same permutation.
#[inline]
pub(crate) fn x_cmp(rects: &[Rect], a: usize, b: usize) -> std::cmp::Ordering {
    let ca = rects[a].center();
    let cb = rects[b].center();
    ca.x.total_cmp(&cb.x)
        .then(ca.y.total_cmp(&cb.y))
        .then(a.cmp(&b))
}

/// Hilbert sort keys of all rect centers (within the level's MBR).
pub(crate) fn hilbert_keys(rects: &[Rect]) -> Vec<u64> {
    let bounds = Rect::mbr_of_rects(rects.iter().copied()).expect("non-empty");
    rects
        .iter()
        .map(|r| hilbert::rect_index(r, &bounds))
        .collect()
}

/// Groups one slab of the level's sort order (global indices into
/// `rects`, already ordered by [`order`]). Produces exactly
/// `⌈ord.len()/m⌉` groups, full except possibly the last.
pub fn group_slab(
    strategy: PackStrategy,
    rects: &[Rect],
    ord: &[usize],
    plan: &SlabPlan,
) -> Vec<Vec<usize>> {
    let m = plan.m();
    match strategy {
        PackStrategy::NearestNeighbor => {
            let centers: Vec<Point> = ord.iter().map(|&i| rects[i].center()).collect();
            nearest_neighbor_groups(ord, m, GridNeighbors::from_centers(centers))
        }
        PackStrategy::NearestNeighborNaive => {
            let centers: Vec<Point> = ord.iter().map(|&i| rects[i].center()).collect();
            nearest_neighbor_groups(ord, m, NaiveNeighbors::from_centers(centers))
        }
        PackStrategy::XSort | PackStrategy::Hilbert => {
            ord.chunks(m).map(<[usize]>::to_vec).collect()
        }
        PackStrategy::SortTileRecursive => {
            // slab_len is a multiple of str_capacity, so slab-local
            // tiling cuts at the same boundaries as global tiling.
            let mut groups = Vec::with_capacity(ord.len().div_ceil(m));
            for x_slab in ord.chunks(plan.str_capacity().max(1)) {
                let mut x_slab: Vec<usize> = x_slab.to_vec();
                x_slab.sort_by(|&a, &b| {
                    let ca = rects[a].center();
                    let cb = rects[b].center();
                    ca.y.total_cmp(&cb.y)
                        .then(ca.x.total_cmp(&cb.x))
                        .then(a.cmp(&b))
                });
                for chunk in x_slab.chunks(m) {
                    groups.push(chunk.to_vec());
                }
            }
            groups
        }
    }
}

/// The paper's grouping loop over one slab: take the first remaining
/// object `I1` (in slab order, i.e. ascending x), then `NN(DLIST, I1)`
/// until the node is full.
///
/// `set` indexes the slab locally (0..ord.len() in slab order); returned
/// groups carry the global indices from `ord`.
fn nearest_neighbor_groups<S: NeighborSet>(ord: &[usize], m: usize, mut set: S) -> Vec<Vec<usize>> {
    let mut groups = Vec::with_capacity(ord.len().div_ceil(m));
    for i1 in 0..ord.len() {
        if !set.remove(i1) {
            continue; // already consumed as someone's neighbour
        }
        let mut grp = Vec::with_capacity(m);
        grp.push(ord[i1]);
        // I2 = NN(DLIST, I1); I3 = NN(DLIST, I1); … — all relative to I1.
        let anchor = set.center(i1);
        while grp.len() < m {
            match set.take_nearest(anchor) {
                Some(j) => grp.push(ord[j]),
                None => break,
            }
        }
        groups.push(grp);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(points: &[(f64, f64)]) -> Vec<Rect> {
        points
            .iter()
            .map(|&(x, y)| Rect::from_point(Point::new(x, y)))
            .collect()
    }

    fn check_partition(groups: &[Vec<usize>], n: usize, m: usize) {
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "not a partition");
        for g in groups {
            assert!(!g.is_empty() && g.len() <= m);
        }
    }

    fn scatter(n: usize) -> Vec<Rect> {
        let mut s = 12345u64;
        pts(&(0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1000) as f64;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1000) as f64;
                (x, y)
            })
            .collect::<Vec<_>>())
    }

    #[test]
    fn all_strategies_partition_correctly() {
        let rects = scatter(103);
        for strategy in PackStrategy::ALL {
            let groups = group(strategy, &rects, 4);
            check_partition(&groups, 103, 4);
            assert_eq!(
                groups.len(),
                103usize.div_ceil(4),
                "{strategy:?} group count"
            );
        }
    }

    #[test]
    fn empty_input_gives_no_groups() {
        for strategy in PackStrategy::ALL {
            assert!(group(strategy, &[], 4).is_empty());
        }
    }

    #[test]
    fn fewer_items_than_m_gives_one_group() {
        let rects = scatter(3);
        for strategy in PackStrategy::ALL {
            let groups = group(strategy, &rects, 4);
            assert_eq!(groups.len(), 1);
            assert_eq!(groups[0].len(), 3);
        }
    }

    #[test]
    fn nn_grouping_matches_paper_example_shape() {
        // Figure 3.4a's eight points: two tight clusters of four; the NN
        // grouping must recover exactly the two clusters (Figure 3.4b).
        let rects = pts(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (10.0, 10.0),
            (11.0, 10.0),
            (10.0, 11.0),
            (11.0, 11.0),
        ]);
        for strategy in [
            PackStrategy::NearestNeighbor,
            PackStrategy::NearestNeighborNaive,
        ] {
            let mut groups = group(strategy, &rects, 4);
            for g in &mut groups {
                g.sort_unstable();
            }
            groups.sort();
            assert_eq!(
                groups,
                vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]],
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn naive_and_grid_nn_agree_without_ties() {
        // Points with unique pairwise distances: both NN providers must
        // produce identical groups.
        let rects = scatter(64);
        let a = group(PackStrategy::NearestNeighbor, &rects, 4);
        let b = group(PackStrategy::NearestNeighborNaive, &rects, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn xsort_respects_x_order() {
        let rects = pts(&[(5.0, 0.0), (1.0, 9.0), (3.0, 2.0), (9.0, 1.0), (2.0, 8.0)]);
        let groups = group(PackStrategy::XSort, &rects, 2);
        // x-order: 1 (x=1), 4 (x=2), 2 (x=3), 0 (x=5), 3 (x=9)
        assert_eq!(groups, vec![vec![1, 4], vec![2, 0], vec![3]]);
    }

    #[test]
    fn str_tiles_grid_perfectly() {
        // A 4x4 grid with m=4 should tile into 4 disjoint groups.
        let mut g = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                g.push((i as f64, j as f64));
            }
        }
        let rects = pts(&g);
        let groups = group(PackStrategy::SortTileRecursive, &rects, 4);
        assert_eq!(groups.len(), 4);
        // Group MBRs must be pairwise disjoint (perfect tiling).
        let mbrs: Vec<Rect> = groups
            .iter()
            .map(|grp| Rect::mbr_of_rects(grp.iter().map(|&i| rects[i])).unwrap())
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(mbrs[i].intersection_area(&mbrs[j]), 0.0);
            }
        }
    }

    #[test]
    fn large_branching_factor() {
        let rects = scatter(1000);
        for strategy in PackStrategy::ALL {
            let groups = group(strategy, &rects, 50);
            check_partition(&groups, 1000, 50);
            assert_eq!(groups.len(), 20);
        }
    }
}
