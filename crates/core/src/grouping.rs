//! Grouping strategies: how one level's entries are partitioned into
//! nodes.
//!
//! Every packing algorithm in this crate is "sort/select groups of `M`,
//! recurse on the MBRs"; they differ only in this partition step. The
//! [`group`] function dispatches on [`PackStrategy`]
//! (re-exported from the [`mod@crate::pack`] module).

use crate::hilbert;
use crate::nn::{GridNeighbors, NaiveNeighbors, NeighborSet};
use rtree_geom::{Point, Rect};

/// The available packing strategies (see crate docs for provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PackStrategy {
    /// The paper's PACK (§3.3): ascending-x order, groups filled by
    /// repeated nearest-neighbour selection (grid-accelerated).
    #[default]
    NearestNeighbor,
    /// PACK with the pseudocode's literal O(n²) nearest-neighbour scan;
    /// identical output to [`PackStrategy::NearestNeighbor`] up to
    /// distance ties.
    NearestNeighborNaive,
    /// Plain ascending-x runs of `M` — the paper's sort criterion without
    /// the NN refinement; poor on the y axis, used as an ablation.
    XSort,
    /// Sort-Tile-Recursive (Leutenegger, Lopez & Edgington 1997).
    SortTileRecursive,
    /// Hilbert-curve order (Kamel & Faloutsos 1993).
    Hilbert,
}

impl PackStrategy {
    /// All strategies, for sweeps and ablations.
    pub const ALL: [PackStrategy; 5] = [
        PackStrategy::NearestNeighbor,
        PackStrategy::NearestNeighborNaive,
        PackStrategy::XSort,
        PackStrategy::SortTileRecursive,
        PackStrategy::Hilbert,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            PackStrategy::NearestNeighbor => "pack-nn",
            PackStrategy::NearestNeighborNaive => "pack-nn-naive",
            PackStrategy::XSort => "pack-xsort",
            PackStrategy::SortTileRecursive => "pack-str",
            PackStrategy::Hilbert => "pack-hilbert",
        }
    }
}

/// Partitions `rects` into groups of at most `m` indices each, according
/// to `strategy`. Groups are returned in construction order; every index
/// appears in exactly one group; all groups except possibly the last are
/// full for the sort-based strategies (NN grouping fills every group it
/// starts until the list runs out).
pub fn group(strategy: PackStrategy, rects: &[Rect], m: usize) -> Vec<Vec<usize>> {
    assert!(m >= 1);
    if rects.is_empty() {
        return Vec::new();
    }
    match strategy {
        PackStrategy::NearestNeighbor => {
            let set = GridNeighbors::new(rects);
            nearest_neighbor_groups(rects, m, set)
        }
        PackStrategy::NearestNeighborNaive => {
            let set = NaiveNeighbors::new(rects);
            nearest_neighbor_groups(rects, m, set)
        }
        PackStrategy::XSort => xsort_groups(rects, m),
        PackStrategy::SortTileRecursive => str_groups(rects, m),
        PackStrategy::Hilbert => hilbert_groups(rects, m),
    }
}

/// Indices of `rects` sorted by ascending center x (ties by y then index
/// for determinism) — "Order objects of DLIST by some spatial criterion,
/// e.g. ascending x-coordinate" (§3.3).
fn x_order(rects: &[Rect]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..rects.len()).collect();
    order.sort_by(|&a, &b| {
        let ca = rects[a].center();
        let cb = rects[b].center();
        ca.x.total_cmp(&cb.x).then(ca.y.total_cmp(&cb.y)).then(a.cmp(&b))
    });
    order
}

/// The paper's grouping loop: take the first remaining object `I1`, then
/// `NN(DLIST, I1)` until the node is full.
fn nearest_neighbor_groups<S: NeighborSet>(
    rects: &[Rect],
    m: usize,
    mut set: S,
) -> Vec<Vec<usize>> {
    let order = x_order(rects);
    let centers: Vec<Point> = rects.iter().map(Rect::center).collect();
    let mut groups = Vec::with_capacity(rects.len().div_ceil(m));
    for &i1 in &order {
        if !set.remove(i1) {
            continue; // already consumed as someone's neighbour
        }
        let mut grp = Vec::with_capacity(m);
        grp.push(i1);
        // I2 = NN(DLIST, I1); I3 = NN(DLIST, I1); … — all relative to I1.
        while grp.len() < m {
            match set.take_nearest(centers[i1]) {
                Some(j) => grp.push(j),
                None => break,
            }
        }
        groups.push(grp);
    }
    groups
}

/// Runs of `m` in ascending-x order.
fn xsort_groups(rects: &[Rect], m: usize) -> Vec<Vec<usize>> {
    x_order(rects).chunks(m).map(<[usize]>::to_vec).collect()
}

/// Sort-Tile-Recursive: `S = ⌈√⌈n/m⌉⌉` vertical slabs by x, each slab
/// chunked by y.
fn str_groups(rects: &[Rect], m: usize) -> Vec<Vec<usize>> {
    let n = rects.len();
    let leaves = n.div_ceil(m);
    let s = (leaves as f64).sqrt().ceil() as usize;
    let slab_capacity = s * m;
    let by_x = x_order(rects);
    let mut groups = Vec::with_capacity(leaves);
    for slab in by_x.chunks(slab_capacity) {
        let mut slab: Vec<usize> = slab.to_vec();
        slab.sort_by(|&a, &b| {
            let ca = rects[a].center();
            let cb = rects[b].center();
            ca.y.total_cmp(&cb.y).then(ca.x.total_cmp(&cb.x)).then(a.cmp(&b))
        });
        for chunk in slab.chunks(m) {
            groups.push(chunk.to_vec());
        }
    }
    groups
}

/// Runs of `m` in Hilbert-curve order of the centers.
fn hilbert_groups(rects: &[Rect], m: usize) -> Vec<Vec<usize>> {
    let bounds = Rect::mbr_of_rects(rects.iter().copied()).expect("non-empty");
    let mut keyed: Vec<(u64, usize)> = rects
        .iter()
        .enumerate()
        .map(|(i, r)| (hilbert::point_index(r.center(), &bounds), i))
        .collect();
    keyed.sort_unstable();
    keyed
        .chunks(m)
        .map(|c| c.iter().map(|&(_, i)| i).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(points: &[(f64, f64)]) -> Vec<Rect> {
        points
            .iter()
            .map(|&(x, y)| Rect::from_point(Point::new(x, y)))
            .collect()
    }

    fn check_partition(groups: &[Vec<usize>], n: usize, m: usize) {
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "not a partition");
        for g in groups {
            assert!(!g.is_empty() && g.len() <= m);
        }
    }

    fn scatter(n: usize) -> Vec<Rect> {
        let mut s = 12345u64;
        pts(&(0..n)
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1000) as f64;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1000) as f64;
                (x, y)
            })
            .collect::<Vec<_>>())
    }

    #[test]
    fn all_strategies_partition_correctly() {
        let rects = scatter(103);
        for strategy in PackStrategy::ALL {
            let groups = group(strategy, &rects, 4);
            check_partition(&groups, 103, 4);
            assert_eq!(
                groups.len(),
                103usize.div_ceil(4),
                "{strategy:?} group count"
            );
        }
    }

    #[test]
    fn empty_input_gives_no_groups() {
        for strategy in PackStrategy::ALL {
            assert!(group(strategy, &[], 4).is_empty());
        }
    }

    #[test]
    fn fewer_items_than_m_gives_one_group() {
        let rects = scatter(3);
        for strategy in PackStrategy::ALL {
            let groups = group(strategy, &rects, 4);
            assert_eq!(groups.len(), 1);
            assert_eq!(groups[0].len(), 3);
        }
    }

    #[test]
    fn nn_grouping_matches_paper_example_shape() {
        // Figure 3.4a's eight points: two tight clusters of four; the NN
        // grouping must recover exactly the two clusters (Figure 3.4b).
        let rects = pts(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (10.0, 10.0),
            (11.0, 10.0),
            (10.0, 11.0),
            (11.0, 11.0),
        ]);
        for strategy in [PackStrategy::NearestNeighbor, PackStrategy::NearestNeighborNaive] {
            let mut groups = group(strategy, &rects, 4);
            for g in &mut groups {
                g.sort_unstable();
            }
            groups.sort();
            assert_eq!(groups, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]], "{strategy:?}");
        }
    }

    #[test]
    fn naive_and_grid_nn_agree_without_ties() {
        // Points with unique pairwise distances: both NN providers must
        // produce identical groups.
        let rects = scatter(64);
        let a = group(PackStrategy::NearestNeighbor, &rects, 4);
        let b = group(PackStrategy::NearestNeighborNaive, &rects, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn xsort_respects_x_order() {
        let rects = pts(&[(5.0, 0.0), (1.0, 9.0), (3.0, 2.0), (9.0, 1.0), (2.0, 8.0)]);
        let groups = group(PackStrategy::XSort, &rects, 2);
        // x-order: 1 (x=1), 4 (x=2), 2 (x=3), 0 (x=5), 3 (x=9)
        assert_eq!(groups, vec![vec![1, 4], vec![2, 0], vec![3]]);
    }

    #[test]
    fn str_tiles_grid_perfectly() {
        // A 4x4 grid with m=4 should tile into 4 disjoint groups.
        let mut g = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                g.push((i as f64, j as f64));
            }
        }
        let rects = pts(&g);
        let groups = group(PackStrategy::SortTileRecursive, &rects, 4);
        assert_eq!(groups.len(), 4);
        // Group MBRs must be pairwise disjoint (perfect tiling).
        let mbrs: Vec<Rect> = groups
            .iter()
            .map(|grp| Rect::mbr_of_rects(grp.iter().map(|&i| rects[i])).unwrap())
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(mbrs[i].intersection_area(&mbrs[j]), 0.0);
            }
        }
    }

    #[test]
    fn large_branching_factor() {
        let rects = scatter(1000);
        for strategy in PackStrategy::ALL {
            let groups = group(strategy, &rects, 50);
            check_partition(&groups, 1000, 50);
            assert_eq!(groups.len(), 20);
        }
    }
}
