//! Algorithm PACK (§3.3) and its packing variants.
//!
//! All packers share one recursion: partition the current level's entries
//! into groups of at most `M` ([`crate::grouping`]), materialize one node
//! per group, and repeat on the node MBRs "working ever backwards, until
//! the root is finally reached and created".

use crate::grouping::PackStrategy;
use rtree_geom::Rect;
use rtree_index::{ItemId, RTree, RTreeConfig};

/// Packs `items` into an R-tree with the paper's algorithm
/// (ascending-x order + nearest-neighbour grouping, grid-accelerated).
///
/// The resulting tree has every node fully packed except possibly the last
/// node of each level, minimal depth `⌈log_M n⌉`-ish, and the
/// coverage/overlap characteristics of Table 1's PACK columns. It remains
/// a perfectly ordinary R-tree: Guttman INSERT/DELETE keep working on it
/// (§3.4).
pub fn pack(items: Vec<(Rect, ItemId)>, config: RTreeConfig) -> RTree {
    pack_with(items, config, PackStrategy::NearestNeighbor)
}

/// PACK with the pseudocode's literal O(n²) nearest-neighbour scan.
///
/// Output is identical to [`pack`] up to exact distance ties; kept as the
/// fidelity reference and for the `pack_fidelity` tests.
pub fn pack_naive(items: Vec<(Rect, ItemId)>, config: RTreeConfig) -> RTree {
    pack_with(items, config, PackStrategy::NearestNeighborNaive)
}

/// Packing by plain ascending-x runs (the sort criterion alone).
pub fn pack_xsort(items: Vec<(Rect, ItemId)>, config: RTreeConfig) -> RTree {
    pack_with(items, config, PackStrategy::XSort)
}

/// Sort-Tile-Recursive packing.
pub fn pack_str(items: Vec<(Rect, ItemId)>, config: RTreeConfig) -> RTree {
    pack_with(items, config, PackStrategy::SortTileRecursive)
}

/// Hilbert-curve packing.
pub fn pack_hilbert(items: Vec<(Rect, ItemId)>, config: RTreeConfig) -> RTree {
    pack_with(items, config, PackStrategy::Hilbert)
}

/// Packs with an explicit [`PackStrategy`].
///
/// Runs the shared level-building engine single-threaded; see
/// [`crate::parallel::pack_parallel_with`] for the multi-threaded entry
/// point (bit-identical output at every thread count).
pub fn pack_with(items: Vec<(Rect, ItemId)>, config: RTreeConfig, strategy: PackStrategy) -> RTree {
    crate::parallel::pack_parallel_with(items, config, strategy, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;
    use rtree_index::{SearchStats, SplitPolicy, TreeMetrics};

    fn points(n: u64, seed: u64) -> Vec<(Rect, ItemId)> {
        let mut s = seed;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1000.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1000.0;
                (Rect::from_point(Point::new(x, y)), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn empty_pack() {
        for strategy in PackStrategy::ALL {
            let t = pack_with(Vec::new(), RTreeConfig::PAPER, strategy);
            assert!(t.is_empty());
            t.assert_valid();
        }
    }

    #[test]
    fn single_item_pack() {
        let t = pack(points(1, 5), RTreeConfig::PAPER);
        assert_eq!(t.len(), 1);
        assert_eq!(t.depth(), 0);
        t.validate_with(false).unwrap();
    }

    #[test]
    fn all_strategies_build_valid_searchable_trees() {
        let items = points(333, 9);
        for strategy in PackStrategy::ALL {
            let t = pack_with(items.clone(), RTreeConfig::PAPER, strategy);
            t.validate_with(false)
                .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert_eq!(t.len(), 333);
            // Every item findable by point query.
            let mut stats = SearchStats::default();
            for &(r, id) in items.iter().take(50) {
                let hits = t.point_query(r.center(), &mut stats);
                assert!(hits.contains(&id), "{strategy:?} lost {id}");
            }
        }
    }

    #[test]
    fn packed_depth_is_minimal() {
        // 256 items, M=4: 64 leaves (level 0), 16, 4, then the root —
        // depth 3, node count 64 + 16 + 4 + 1 = 85.
        let t = pack(points(256, 3), RTreeConfig::PAPER);
        assert_eq!(t.depth(), 3);
        assert_eq!(t.node_count(), 85);
    }

    #[test]
    fn packed_nodes_are_full() {
        let t = pack(points(256, 11), RTreeConfig::PAPER);
        // With n a power of M every node is exactly full.
        for (_, node) in t.iter_nodes() {
            assert_eq!(node.len(), 4);
        }
    }

    #[test]
    fn leftover_items_create_one_partial_node_per_level() {
        let t = pack(points(257, 11), RTreeConfig::PAPER);
        t.validate_with(false).unwrap();
        assert_eq!(t.len(), 257);
        let partial = t
            .iter_nodes()
            .filter(|(_, n)| n.is_leaf() && n.len() < 4)
            .count();
        assert!(partial <= 1, "at most one partial leaf, got {partial}");
    }

    #[test]
    fn pack_beats_insert_on_structure() {
        // The headline claims of Table 1 that are robust to the split
        // policy: PACK uses fewer nodes (full occupancy — the paper's
        // "savings in space"), never more depth, and — against the
        // linear split the 1985-era INSERT most resembles — less leaf
        // overlap.
        let items = points(900, 17);
        let packed = pack(items.clone(), RTreeConfig::PAPER);
        let mut dynamic = RTree::new(RTreeConfig::PAPER.with_split(SplitPolicy::Linear));
        for &(r, id) in &items {
            dynamic.insert(r, id);
        }
        let mp = TreeMetrics::measure(&packed);
        let md = TreeMetrics::measure(&dynamic);
        assert!(
            mp.overlap < md.overlap,
            "packed overlap {} !< dynamic {}",
            mp.overlap,
            md.overlap
        );
        assert!(mp.nodes < md.nodes, "{} !< {}", mp.nodes, md.nodes);
        assert!(mp.depth <= md.depth);
        // Full occupancy: ~n/4 leaves versus INSERT's ~n/2.4.
        assert!((mp.nodes as f64) < 0.75 * md.nodes as f64);
    }

    #[test]
    fn pack_beats_insert_on_point_query_cost() {
        let items = points(900, 23);
        let packed = pack(items.clone(), RTreeConfig::PAPER);
        let mut dynamic = RTree::new(RTreeConfig::PAPER.with_split(SplitPolicy::Linear));
        for &(r, id) in &items {
            dynamic.insert(r, id);
        }
        let mut sp = SearchStats::default();
        let mut sd = SearchStats::default();
        let queries = points(1000, 77);
        for &(r, _) in &queries {
            packed.point_query(r.center(), &mut sp);
            dynamic.point_query(r.center(), &mut sd);
        }
        assert!(
            sp.avg_nodes_visited() < sd.avg_nodes_visited(),
            "packed {} vs dynamic {}",
            sp.avg_nodes_visited(),
            sd.avg_nodes_visited()
        );
    }

    #[test]
    fn pack_and_pack_naive_agree_on_metrics() {
        let items = points(200, 31);
        let a = pack(items.clone(), RTreeConfig::PAPER);
        let b = pack_naive(items, RTreeConfig::PAPER);
        let (ma, mb) = (a.metrics(), b.metrics());
        assert_eq!(ma.nodes, mb.nodes);
        assert_eq!(ma.depth, mb.depth);
        // Identical groupings up to ties → identical coverage.
        assert!(
            (ma.coverage - mb.coverage).abs() < 1e-6 * ma.coverage.max(1.0),
            "coverage {} vs {}",
            ma.coverage,
            mb.coverage
        );
    }

    #[test]
    fn search_equivalence_across_strategies() {
        let items = points(150, 41);
        let window = Rect::new(200.0, 200.0, 600.0, 700.0);
        let mut expect: Vec<ItemId> = items
            .iter()
            .filter(|(r, _)| r.covered_by(&window))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        for strategy in PackStrategy::ALL {
            let t = pack_with(items.clone(), RTreeConfig::PAPER, strategy);
            let mut stats = SearchStats::default();
            let mut got = t.search_within(&window, &mut stats);
            got.sort();
            assert_eq!(got, expect, "{strategy:?}");
        }
    }

    #[test]
    fn big_branching_factor_pack() {
        let items = points(5000, 53);
        let t = pack(items, RTreeConfig::with_branching(64));
        t.validate_with(false).unwrap();
        assert_eq!(t.depth(), 2); // 5000 -> 79 -> 2 -> root
    }

    #[test]
    fn dynamic_updates_work_on_packed_tree() {
        // §3.4: INSERT/DELETE still apply after PACK.
        let items = points(100, 61);
        let mut t = pack(items.clone(), RTreeConfig::PAPER);
        t.insert(Rect::from_point(Point::new(500.0, 500.0)), ItemId(1000));
        assert!(t.remove(items[0].0, items[0].1));
        t.validate_with(false).unwrap();
        assert_eq!(t.len(), 100);
    }
}
