//! Theorem 3.3's counterexample (Figure 3.6): a set of disjoint regions
//! that admits **no** zero-overlap grouping.
//!
//! The paper proves Theorem 3.3 by exhibiting a pinwheel of "skewed
//! rectangular regions" around a central region `R0`: any MBR that wholly
//! contains `R0` and at least one other region necessarily swallows part
//! of a region outside the group. [`pinwheel`] constructs such a
//! configuration and [`zero_overlap_grouping`] is the exhaustive checker
//! that verifies (in tests and the `fig3_6` report binary) that no legal
//! grouping has zero overlap — while e.g. a 2×2 grid of squares does.

use rtree_geom::Rect;

/// The Figure 3.6 configuration: a central region `R0` (index 0)
/// surrounded by four long thin bars arranged as a pinwheel.
///
/// All five regions are pairwise disjoint, yet every partition into groups
/// of 2–4 regions produces MBRs with positive pairwise intersection.
pub fn pinwheel() -> Vec<Rect> {
    vec![
        Rect::new(4.0, 4.0, 5.0, 5.0), // R0: center
        Rect::new(0.0, 8.0, 7.0, 9.0), // top bar, anchored left
        Rect::new(8.0, 2.0, 9.0, 9.0), // right bar, anchored top
        Rect::new(2.0, 0.0, 9.0, 1.0), // bottom bar, anchored right
        Rect::new(0.0, 0.0, 1.0, 7.0), // left bar, anchored bottom
    ]
}

/// Searches exhaustively for a grouping satisfying Theorem 3.3's three
/// conditions:
///
/// 1. each region wholly inside exactly one group's MBR (trivially true of
///    a partition);
/// 2. each group holds **more than one** but at most `max_group` regions;
/// 3. all group MBRs pairwise intersect with **zero area**.
///
/// Returns a witness partition if one exists. Exponential; intended for
/// the ≤ 12 regions of demonstrations and tests.
pub fn zero_overlap_grouping(regions: &[Rect], max_group: usize) -> Option<Vec<Vec<usize>>> {
    assert!(
        regions.len() <= 12,
        "exhaustive search limited to 12 regions"
    );
    assert!(max_group >= 2);
    let mut assignment: Vec<Vec<usize>> = Vec::new();
    search(regions, max_group, 0, &mut assignment)
}

fn search(
    regions: &[Rect],
    max_group: usize,
    next: usize,
    groups: &mut Vec<Vec<usize>>,
) -> Option<Vec<Vec<usize>>> {
    if next == regions.len() {
        // All regions placed: validate sizes and MBR disjointness. Also
        // condition (1): no group's MBR may swallow a region of another
        // group (it would then be inside two MBRs).
        if groups.iter().any(|g| g.len() < 2 || g.len() > max_group) {
            return None;
        }
        let mbrs: Vec<Rect> = groups
            .iter()
            .map(|g| Rect::mbr_of_rects(g.iter().map(|&i| regions[i])).expect("non-empty"))
            .collect();
        for i in 0..mbrs.len() {
            for j in (i + 1)..mbrs.len() {
                if mbrs[i].intersection_area(&mbrs[j]) > 0.0 {
                    return None;
                }
            }
        }
        return Some(groups.clone());
    }
    // Place region `next` into an existing group…
    for g in 0..groups.len() {
        if groups[g].len() < max_group {
            groups[g].push(next);
            if let Some(w) = search(regions, max_group, next + 1, groups) {
                return Some(w);
            }
            groups[g].pop();
        }
    }
    // …or start a new one.
    groups.push(vec![next]);
    if let Some(w) = search(regions, max_group, next + 1, groups) {
        return Some(w);
    }
    groups.pop();
    None
}

/// Convenience: `true` if the configuration admits *no* zero-overlap
/// grouping — i.e. it witnesses Theorem 3.3.
pub fn is_counterexample(regions: &[Rect], max_group: usize) -> bool {
    zero_overlap_grouping(regions, max_group).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinwheel_regions_are_pairwise_disjoint() {
        let regions = pinwheel();
        for i in 0..regions.len() {
            for j in (i + 1)..regions.len() {
                assert!(
                    regions[i].disjoint(&regions[j]),
                    "regions {i} and {j} intersect"
                );
            }
        }
    }

    #[test]
    fn pinwheel_defeats_zero_overlap() {
        // Theorem 3.3: no grouping of the pinwheel into groups of 2–4 has
        // zero-overlap MBRs.
        assert!(is_counterexample(&pinwheel(), 4));
    }

    #[test]
    fn mbr_with_r0_always_swallows_an_outsider() {
        // The proof's core step: MBR(R0, X) intersects some region ∉ {R0, X}.
        let regions = pinwheel();
        for other in 1..regions.len() {
            let mbr = regions[0].union(&regions[other]);
            let swallowed = (1..regions.len())
                .filter(|&k| k != other)
                .any(|k| mbr.intersection_area(&regions[k]) > 0.0);
            assert!(swallowed, "MBR(R0, R{other}) swallows nothing");
        }
    }

    #[test]
    fn grid_of_squares_is_not_a_counterexample() {
        // Control: 4 well-separated pairs pack with zero overlap.
        let regions = vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(2.0, 0.0, 3.0, 1.0),
            Rect::new(10.0, 10.0, 11.0, 11.0),
            Rect::new(12.0, 10.0, 13.0, 11.0),
        ];
        let witness = zero_overlap_grouping(&regions, 4).expect("groupable");
        assert!(!witness.is_empty());
        assert!(!is_counterexample(&regions, 4));
    }

    #[test]
    fn grouping_respects_min_size_two() {
        // A single isolated region cannot be grouped (condition 2); with
        // 3 regions the only legal shape is one group of 3 (or one of 2 +
        // an illegal singleton).
        let regions = vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(2.0, 0.0, 3.0, 1.0),
            Rect::new(4.0, 0.0, 5.0, 1.0),
        ];
        let witness = zero_overlap_grouping(&regions, 4).unwrap();
        assert_eq!(witness.len(), 1);
        assert_eq!(witness[0].len(), 3);
    }
}
