//! Re-packing degraded trees — §3.4's update problem and §4's proposed
//! "dynamic invocation of the PACK algorithm".
//!
//! A PACKed tree updated with Guttman's INSERT/DELETE slowly regains the
//! coverage and overlap of a dynamically built tree (the first few
//! insertions *must* split, since packed nodes are full). The paper
//! proposes periodic local reorganization; [`AutoRepack`] implements the
//! amortized version: count updates and re-pack once they exceed a
//! configured fraction of the tree, keeping search performance within a
//! constant factor of freshly packed while amortizing the O(n log n) pack
//! cost over many updates. The `update_degradation` experiment (EXT-4)
//! quantifies both the decay and the recovery.

use crate::grouping::PackStrategy;
use crate::pack::pack_with;
use rtree_geom::{Point, Rect};
use rtree_index::{ItemId, RTree, RTreeConfig, SearchStats};

/// Re-packs an existing tree from scratch with the given strategy,
/// restoring full-node occupancy and minimal coverage/overlap.
pub fn repack(tree: &RTree, strategy: PackStrategy) -> RTree {
    pack_with(tree.items(), tree.config(), strategy)
}

/// An R-tree that re-packs itself after a configurable amount of churn.
///
/// Wraps an [`RTree`]; inserts and removals are delegated to Guttman's
/// algorithms, and when accumulated updates exceed
/// `repack_fraction × len`, the whole tree is re-packed with
/// [`PackStrategy::NearestNeighbor`] (or the strategy given to
/// [`with_strategy`](AutoRepack::with_strategy)).
#[derive(Debug, Clone)]
pub struct AutoRepack {
    tree: RTree,
    strategy: PackStrategy,
    updates_since_pack: usize,
    repack_fraction: f64,
    repacks: usize,
}

impl AutoRepack {
    /// Packs `items` and begins tracking updates; `repack_fraction` is the
    /// churn ratio that triggers reorganization (e.g. `0.25` = repack
    /// after updates amounting to 25% of the current size).
    pub fn new(items: Vec<(Rect, ItemId)>, config: RTreeConfig, repack_fraction: f64) -> Self {
        assert!(repack_fraction > 0.0, "fraction must be positive");
        AutoRepack {
            tree: pack_with(items, config, PackStrategy::NearestNeighbor),
            strategy: PackStrategy::NearestNeighbor,
            updates_since_pack: 0,
            repack_fraction,
            repacks: 0,
        }
    }

    /// Uses a different packing strategy for reorganizations.
    pub fn with_strategy(mut self, strategy: PackStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The underlying tree (for searches and metrics).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Number of reorganizations performed so far.
    pub fn repacks(&self) -> usize {
        self.repacks
    }

    /// Inserts an item; may trigger a repack.
    pub fn insert(&mut self, mbr: Rect, item: ItemId) {
        self.tree.insert(mbr, item);
        self.note_update();
    }

    /// Removes an item; may trigger a repack. Returns whether it existed.
    pub fn remove(&mut self, mbr: Rect, item: ItemId) -> bool {
        let removed = self.tree.remove(mbr, item);
        if removed {
            self.note_update();
        }
        removed
    }

    /// Point query pass-through.
    pub fn point_query(&self, p: Point, stats: &mut SearchStats) -> Vec<ItemId> {
        self.tree.point_query(p, stats)
    }

    /// Window query pass-through (the paper's `SEARCH` semantics).
    pub fn search_within(&self, window: &Rect, stats: &mut SearchStats) -> Vec<ItemId> {
        self.tree.search_within(window, stats)
    }

    /// Forces an immediate reorganization.
    pub fn force_repack(&mut self) {
        self.tree = repack(&self.tree, self.strategy);
        self.updates_since_pack = 0;
        self.repacks += 1;
    }

    fn note_update(&mut self) {
        self.updates_since_pack += 1;
        let threshold = (self.tree.len() as f64 * self.repack_fraction).max(1.0);
        if self.updates_since_pack as f64 >= threshold {
            self.force_repack();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_index::TreeMetrics;

    fn points(range: std::ops::Range<u64>, seed: u64) -> Vec<(Rect, ItemId)> {
        let mut s = seed;
        range
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1000.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1000.0;
                (Rect::from_point(Point::new(x, y)), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn repack_restores_packed_quality() {
        let items = points(0..300, 1);
        let mut tree = pack_with(
            items.clone(),
            RTreeConfig::PAPER,
            PackStrategy::NearestNeighbor,
        );
        let fresh = TreeMetrics::measure(&tree);
        // Degrade: churn 300 updates through Guttman INSERT/DELETE.
        let churn = points(1000..1300, 2);
        for &(r, id) in &churn {
            tree.insert(r, id);
        }
        for &(r, id) in &items[..150] {
            assert!(tree.remove(r, id));
        }
        for &(r, id) in &churn[..150] {
            assert!(tree.remove(r, id));
        }
        let degraded = TreeMetrics::measure(&tree);
        let repacked_tree = repack(&tree, PackStrategy::NearestNeighbor);
        let repacked = TreeMetrics::measure(&repacked_tree);
        // Repacking restores full occupancy (fewer nodes) and fresh-pack
        // quality: node count and depth back to packed levels, coverage on
        // the same scale as the original pack of a same-sized set.
        assert!(
            repacked.nodes < degraded.nodes,
            "{} !< {}",
            repacked.nodes,
            degraded.nodes
        );
        assert!(repacked.depth <= degraded.depth);
        assert!(repacked.coverage < fresh.coverage * 2.0);
        repacked_tree.validate_with(false).unwrap();
        assert_eq!(repacked_tree.len(), tree.len());
    }

    #[test]
    fn auto_repack_triggers_on_churn() {
        let mut auto = AutoRepack::new(points(0..200, 3), RTreeConfig::PAPER, 0.25);
        assert_eq!(auto.repacks(), 0);
        for (i, &(r, id)) in points(500..600, 4).iter().enumerate() {
            auto.insert(r, id);
            let _ = i;
        }
        assert!(
            auto.repacks() >= 1,
            "100 updates on 200 items at 25% must repack"
        );
        auto.tree().validate_with(false).unwrap();
        assert_eq!(auto.tree().len(), 300);
    }

    #[test]
    fn auto_repack_preserves_contents() {
        let items = points(0..100, 5);
        let mut auto = AutoRepack::new(items.clone(), RTreeConfig::PAPER, 0.1);
        let extra = points(200..260, 6);
        for &(r, id) in &extra {
            auto.insert(r, id);
        }
        for &(r, id) in &items[..30] {
            assert!(auto.remove(r, id));
        }
        let mut stats = SearchStats::default();
        for &(r, id) in items[30..].iter().chain(&extra) {
            assert!(auto.point_query(r.center(), &mut stats).contains(&id));
        }
        for &(r, _) in &items[..30] {
            // Removed points may coincide with others; just check absence
            // of their ids.
            let hits = auto.point_query(r.center(), &mut stats);
            for &(_, gone) in &items[..30] {
                assert!(!hits.contains(&gone));
            }
        }
    }

    #[test]
    fn removing_missing_item_does_not_count_as_update() {
        let mut auto = AutoRepack::new(points(0..10, 7), RTreeConfig::PAPER, 10.0);
        assert!(!auto.remove(Rect::from_point(Point::new(-1.0, -1.0)), ItemId(999)));
        assert_eq!(auto.repacks(), 0);
    }

    #[test]
    fn force_repack_resets_counter() {
        let mut auto = AutoRepack::new(points(0..50, 8), RTreeConfig::PAPER, 1000.0);
        auto.force_repack();
        assert_eq!(auto.repacks(), 1);
        auto.tree().validate_with(false).unwrap();
    }
}
