//! The PACK algorithm of Roussopoulos & Leifker (SIGMOD 1985) — bulk
//! loading ("initial packing") of R-trees — together with the descendant
//! packing strategies it spawned and the paper's theoretical constructions.
//!
//! # The paper's algorithm
//!
//! [`pack()`](pack()) is a faithful implementation of §3.3's recursive `PACK`:
//! order the data objects by a spatial criterion (ascending x), then
//! repeatedly take the first remaining object `I1` and its `M − 1` nearest
//! neighbours (`NN(DLIST, I1)`, deleting as it selects) to fill one node;
//! recurse on the resulting MBRs until a single root remains. Nodes come
//! out fully packed, minimizing both *coverage* and *overlap* (§3.1), which
//! is what produces the order-of-magnitude search savings of Table 1.
//!
//! # Variants and extensions
//!
//! * [`pack_naive`] — same algorithm with the literal O(n²) nearest-
//!   neighbour scan of the pseudocode (the default uses a uniform grid);
//! * [`pack_xsort`] — packing by pure ascending-x runs (the paper's sort
//!   criterion without the NN refinement);
//! * [`pack_str`] — Sort-Tile-Recursive (Leutenegger et al. 1997), the
//!   best-known descendant of this paper;
//! * [`pack_hilbert`] — Hilbert-curve-order packing (Kamel & Faloutsos
//!   1993);
//! * [`zero_overlap`] — the constructive proof of Theorem 3.2 (points can
//!   always be packed with zero leaf overlap, via Lemma 3.1's rotation);
//! * [`counterexample`] — Figure 3.6's pinwheel of skewed rectangles, for
//!   which Theorem 3.3 shows zero overlap is impossible;
//! * [`repack`] — §3.4/§4's "dynamic invocation of the PACK algorithm":
//!   amortized re-packing of a tree degraded by updates.
//!
//! # Example
//!
//! ```
//! use packed_rtree_core::pack;
//! use rtree_index::{ItemId, RTreeConfig, SearchStats};
//! use rtree_geom::{Point, Rect};
//!
//! let items: Vec<(Rect, ItemId)> = (0..100)
//!     .map(|i| {
//!         let p = Point::new((i % 10) as f64, (i / 10) as f64);
//!         (Rect::from_point(p), ItemId(i))
//!     })
//!     .collect();
//! let tree = pack(items, RTreeConfig::PAPER);
//! assert_eq!(tree.len(), 100);
//! let mut stats = SearchStats::default();
//! let hits = tree.search_within(&Rect::new(0.0, 0.0, 3.0, 3.0), &mut stats);
//! assert_eq!(hits.len(), 16);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counterexample;
pub mod grouping;
pub mod hilbert;
pub mod nn;
pub mod pack;
pub mod parallel;
pub mod repack;
pub mod zero_overlap;

pub use grouping::PackStrategy;
pub use pack::{pack, pack_hilbert, pack_naive, pack_str, pack_with, pack_xsort};
pub use parallel::{
    default_threads, effective_threads, order_parallel, pack_parallel, pack_parallel_with,
    par_sort_values,
};
pub use repack::AutoRepack;
