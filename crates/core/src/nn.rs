//! Nearest-neighbour providers for PACK's `NN(DLIST, I)` function.
//!
//! The paper specifies: "`NN(DLIST, I)` returns the item in the list DLIST
//! which is spatially closest to item `I` and has the additional effect of
//! deleting that item from DLIST." Distances are between MBR centers
//! (exact point distance when the items are points).
//!
//! Two implementations:
//! * [`NaiveNeighbors`] — the literal O(n) scan per query, kept as the
//!   fidelity reference (`pack_naive`);
//! * [`GridNeighbors`] — a uniform-grid index answering NN queries in
//!   ~O(1) expected for the paper's uniformly distributed workloads,
//!   making `pack` usable at realistic sizes.

use rtree_geom::{Point, Rect};

/// A removable set of items supporting nearest queries against a point.
pub trait NeighborSet {
    /// Number of items still present.
    fn len(&self) -> usize;
    /// `true` if no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Removes and returns the index of the item closest to `query`
    /// (ties broken arbitrarily), or `None` if empty.
    fn take_nearest(&mut self, query: Point) -> Option<usize>;
    /// Removes a specific item by index. Returns `false` if already gone.
    fn remove(&mut self, index: usize) -> bool;
    /// The center point item `index` was built from (valid whether or not
    /// the item has been removed).
    fn center(&self, index: usize) -> Point;
}

/// O(n)-per-query scan over MBR centers.
pub struct NaiveNeighbors {
    centers: Vec<Point>,
    alive: Vec<bool>,
    remaining: usize,
}

impl NaiveNeighbors {
    /// Builds from item bounding rectangles.
    pub fn new(rects: &[Rect]) -> Self {
        Self::from_centers(rects.iter().map(Rect::center).collect())
    }

    /// Builds directly from precomputed MBR centers (the slab-local
    /// grouping path, which already holds the centers).
    pub fn from_centers(centers: Vec<Point>) -> Self {
        let n = centers.len();
        NaiveNeighbors {
            centers,
            alive: vec![true; n],
            remaining: n,
        }
    }
}

impl NeighborSet for NaiveNeighbors {
    fn len(&self) -> usize {
        self.remaining
    }

    fn take_nearest(&mut self, query: Point) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for (i, (&c, &alive)) in self.centers.iter().zip(&self.alive).enumerate() {
            if !alive {
                continue;
            }
            let d = c.distance_sq(query);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i));
            }
        }
        let (_, idx) = best?;
        self.remove(idx);
        Some(idx)
    }

    fn remove(&mut self, index: usize) -> bool {
        if self.alive[index] {
            self.alive[index] = false;
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    fn center(&self, index: usize) -> Point {
        self.centers[index]
    }
}

/// Uniform-grid nearest-neighbour index over MBR centers.
///
/// Cells hold item indices; a query spirals outward ring by ring and stops
/// once no unexplored ring can beat the best candidate. Expected O(1) per
/// query on roughly uniform data; degrades gracefully (never worse than a
/// full scan) on pathological clustering.
pub struct GridNeighbors {
    centers: Vec<Point>,
    alive: Vec<bool>,
    remaining: usize,
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
}

impl GridNeighbors {
    /// Builds from item bounding rectangles.
    pub fn new(rects: &[Rect]) -> Self {
        Self::from_centers(rects.iter().map(Rect::center).collect())
    }

    /// Builds directly from precomputed MBR centers.
    pub fn from_centers(centers: Vec<Point>) -> Self {
        let n = centers.len();
        let bounds = Rect::mbr_of_points(centers.iter().copied())
            .unwrap_or_else(|| Rect::new(0.0, 0.0, 1.0, 1.0));
        // Aim for ~1-2 items per cell on uniform data.
        let side = (n as f64).sqrt().ceil().max(1.0) as usize;
        let cell = (bounds.width().max(bounds.height()) / side as f64).max(f64::MIN_POSITIVE);
        // Guard against degenerate extents (all centers identical).
        let cell = if cell.is_normal() { cell } else { 1.0 };
        let nx = ((bounds.width() / cell).ceil() as usize + 1).max(1);
        let ny = ((bounds.height() / cell).ceil() as usize + 1).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        for (i, c) in centers.iter().enumerate() {
            let cx =
                (((c.x - bounds.min_x) / cell).floor() as isize).clamp(0, nx as isize - 1) as usize;
            let cy =
                (((c.y - bounds.min_y) / cell).floor() as isize).clamp(0, ny as isize - 1) as usize;
            cells[cy * nx + cx].push(i as u32);
        }
        GridNeighbors {
            centers,
            alive: vec![true; n],
            remaining: n,
            origin: Point::new(bounds.min_x, bounds.min_y),
            cell,
            nx,
            ny,
            cells,
        }
    }

    #[inline]
    fn cell_coords(&self, p: Point) -> (isize, isize) {
        let cx = ((p.x - self.origin.x) / self.cell).floor() as isize;
        let cy = ((p.y - self.origin.y) / self.cell).floor() as isize;
        (
            cx.clamp(0, self.nx as isize - 1),
            cy.clamp(0, self.ny as isize - 1),
        )
    }

    /// Scans one cell for the best alive candidate.
    fn scan_cell(&self, cx: isize, cy: isize, query: Point, best: &mut Option<(f64, usize)>) {
        if cx < 0 || cy < 0 || cx >= self.nx as isize || cy >= self.ny as isize {
            return;
        }
        for &i in &self.cells[cy as usize * self.nx + cx as usize] {
            let i = i as usize;
            if !self.alive[i] {
                continue;
            }
            let d = self.centers[i].distance_sq(query);
            if best.is_none_or(|(bd, _)| d < bd) {
                *best = Some((d, i));
            }
        }
    }
}

impl NeighborSet for GridNeighbors {
    fn len(&self) -> usize {
        self.remaining
    }

    fn take_nearest(&mut self, query: Point) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let (qx, qy) = self.cell_coords(query);
        let max_ring = self.nx.max(self.ny) as isize;
        let mut best: Option<(f64, usize)> = None;
        for r in 0..=max_ring {
            // Once a candidate is found, stop when the nearest possible
            // point of ring r is farther than the candidate.
            if let Some((bd, _)) = best {
                let ring_min = (r - 1).max(0) as f64 * self.cell;
                if ring_min * ring_min > bd {
                    break;
                }
            }
            if r == 0 {
                self.scan_cell(qx, qy, query, &mut best);
                continue;
            }
            // The ring at Chebyshev distance r.
            for cx in (qx - r)..=(qx + r) {
                self.scan_cell(cx, qy - r, query, &mut best);
                self.scan_cell(cx, qy + r, query, &mut best);
            }
            for cy in (qy - r + 1)..(qy + r) {
                self.scan_cell(qx - r, cy, query, &mut best);
                self.scan_cell(qx + r, cy, query, &mut best);
            }
        }
        let (_, idx) = best?;
        self.remove(idx);
        Some(idx)
    }

    fn remove(&mut self, index: usize) -> bool {
        if self.alive[index] {
            self.alive[index] = false;
            self.remaining -= 1;
            true
        } else {
            false
        }
    }

    fn center(&self, index: usize) -> Point {
        self.centers[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects_at(points: &[(f64, f64)]) -> Vec<Rect> {
        points
            .iter()
            .map(|&(x, y)| Rect::from_point(Point::new(x, y)))
            .collect()
    }

    fn pseudo_random_points(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut s = seed;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 100_000) as f64 / 100.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 100_000) as f64 / 100.0;
                (x, y)
            })
            .collect()
    }

    #[test]
    fn naive_take_nearest_order() {
        let rects = rects_at(&[(0.0, 0.0), (5.0, 0.0), (1.0, 0.0), (9.0, 0.0)]);
        let mut nn = NaiveNeighbors::new(&rects);
        let q = Point::new(0.0, 0.0);
        assert_eq!(nn.take_nearest(q), Some(0));
        assert_eq!(nn.take_nearest(q), Some(2));
        assert_eq!(nn.take_nearest(q), Some(1));
        assert_eq!(nn.take_nearest(q), Some(3));
        assert_eq!(nn.take_nearest(q), None);
        assert!(nn.is_empty());
    }

    #[test]
    fn grid_matches_naive_on_random_data() {
        let pts = pseudo_random_points(500, 7);
        let rects = rects_at(&pts);
        let mut naive = NaiveNeighbors::new(&rects);
        let mut grid = GridNeighbors::new(&rects);
        // Drain both from a sequence of query points; distances must agree
        // at every step (indices may differ only under exact ties).
        let queries = pseudo_random_points(500, 99);
        for (qx, qy) in queries {
            let q = Point::new(qx, qy);
            let a = naive.take_nearest(q);
            let b = grid.take_nearest(q);
            match (a, b) {
                (Some(i), Some(j)) => {
                    let da = Point::new(pts[i].0, pts[i].1).distance_sq(q);
                    let db = Point::new(pts[j].0, pts[j].1).distance_sq(q);
                    assert!((da - db).abs() < 1e-9, "naive {da} vs grid {db}");
                    // Keep the two sets identical for the next iteration.
                    if i != j {
                        naive.alive[i] = true;
                        naive.remaining += 1;
                        naive.remove(j);
                    }
                }
                (None, None) => break,
                other => panic!("divergence: {other:?}"),
            }
        }
    }

    #[test]
    fn grid_handles_identical_points() {
        let rects = rects_at(&[(5.0, 5.0); 10]);
        let mut grid = GridNeighbors::new(&rects);
        let mut count = 0;
        while grid.take_nearest(Point::new(5.0, 5.0)).is_some() {
            count += 1;
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn grid_single_item() {
        let rects = rects_at(&[(1.0, 2.0)]);
        let mut grid = GridNeighbors::new(&rects);
        assert_eq!(grid.take_nearest(Point::new(100.0, 100.0)), Some(0));
        assert_eq!(grid.take_nearest(Point::new(0.0, 0.0)), None);
    }

    #[test]
    fn grid_query_far_outside_bounds() {
        let rects = rects_at(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let mut grid = GridNeighbors::new(&rects);
        assert_eq!(grid.take_nearest(Point::new(-1000.0, -1000.0)), Some(0));
        assert_eq!(grid.take_nearest(Point::new(1000.0, 1000.0)), Some(2));
    }

    #[test]
    fn remove_is_idempotent() {
        let rects = rects_at(&[(0.0, 0.0), (1.0, 1.0)]);
        let mut grid = GridNeighbors::new(&rects);
        assert!(grid.remove(0));
        assert!(!grid.remove(0));
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn rect_items_use_centers() {
        let rects = vec![
            Rect::new(0.0, 0.0, 2.0, 2.0),     // center (1,1)
            Rect::new(10.0, 10.0, 14.0, 14.0), // center (12,12)
        ];
        let mut nn = NaiveNeighbors::new(&rects);
        assert_eq!(nn.take_nearest(Point::new(11.0, 11.0)), Some(1));
    }
}
