//! Theorem 3.2, constructively: any finite point set can be packed into
//! `⌈|S|/M⌉` pairwise-disjoint MBRs of at most `M` points each.
//!
//! The proof rotates the set until all x-coordinates are distinct
//! (Lemma 3.1), sorts by x, and cuts consecutive runs of `M`: each run's
//! MBR is bounded on the right by an x strictly smaller than everything in
//! later runs, so the MBRs cannot intersect. [`zero_overlap_partition`]
//! performs exactly this construction and returns the witness.
//!
//! As the paper notes (§3.2 objections), this is a *theoretical* device:
//! rotating the database frame is rarely practical, and zero overlap at
//! the leaves says nothing about higher levels (Theorem 3.3). The default
//! packer therefore does **not** rotate; this module exists to demonstrate
//! and property-test the theorem.

use rtree_geom::transform;
use rtree_geom::{Point, Rect};

/// The witness produced by the Theorem 3.2 construction.
#[derive(Debug, Clone)]
pub struct ZeroOverlapPartition {
    /// Rotation angle applied before sorting (0 when x-coordinates were
    /// already distinct).
    pub angle: f64,
    /// Indices of the input points, grouped into runs of at most
    /// `max_per_group`, in ascending rotated-x order.
    pub groups: Vec<Vec<usize>>,
    /// MBRs of the groups **in rotated coordinates** — these are the
    /// pairwise-disjoint rectangles the theorem promises.
    pub rotated_mbrs: Vec<Rect>,
}

/// Error cases for the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroOverlapError {
    /// The input contains duplicate points; no rotation can separate them,
    /// so the theorem's hypothesis ("set of points") is violated.
    DuplicatePoints,
    /// The input is empty.
    Empty,
}

impl std::fmt::Display for ZeroOverlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZeroOverlapError::DuplicatePoints => {
                f.write_str("duplicate points cannot be separated by rotation")
            }
            ZeroOverlapError::Empty => f.write_str("empty point set"),
        }
    }
}

impl std::error::Error for ZeroOverlapError {}

/// Carries out the Theorem 3.2 construction for `points` with group size
/// `max_per_group` (the branching factor; 4 in the paper's statement).
pub fn zero_overlap_partition(
    points: &[Point],
    max_per_group: usize,
) -> Result<ZeroOverlapPartition, ZeroOverlapError> {
    assert!(max_per_group >= 1);
    if points.is_empty() {
        return Err(ZeroOverlapError::Empty);
    }
    let angle =
        transform::rotation_with_distinct_x(points).ok_or(ZeroOverlapError::DuplicatePoints)?;
    let rotated = transform::rotate_all(points, angle);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| rotated[a].x.total_cmp(&rotated[b].x));
    let groups: Vec<Vec<usize>> = order.chunks(max_per_group).map(<[usize]>::to_vec).collect();
    let rotated_mbrs: Vec<Rect> = groups
        .iter()
        .map(|g| Rect::mbr_of_points(g.iter().map(|&i| rotated[i])).expect("non-empty"))
        .collect();
    Ok(ZeroOverlapPartition {
        angle,
        groups,
        rotated_mbrs,
    })
}

impl ZeroOverlapPartition {
    /// Verifies the theorem's conclusion: all group MBRs are pairwise
    /// disjoint in the rotated frame (boundary contact between two
    /// degenerate single-column MBRs cannot occur because x-coordinates
    /// are distinct).
    pub fn is_disjoint(&self) -> bool {
        for i in 0..self.rotated_mbrs.len() {
            for j in (i + 1)..self.rotated_mbrs.len() {
                if self.rotated_mbrs[i].intersects(&self.rotated_mbrs[j]) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_case() {
        let pts: Vec<Point> = (0..8)
            .map(|i| Point::new(i as f64, (i * 3 % 5) as f64))
            .collect();
        let w = zero_overlap_partition(&pts, 4).unwrap();
        assert_eq!(w.groups.len(), 2);
        assert!(w.is_disjoint());
        assert_eq!(w.angle, 0.0, "distinct x already");
    }

    #[test]
    fn vertical_line_needs_rotation() {
        let pts: Vec<Point> = (0..12).map(|i| Point::new(5.0, i as f64)).collect();
        let w = zero_overlap_partition(&pts, 4).unwrap();
        assert!(w.angle != 0.0);
        assert_eq!(w.groups.len(), 3);
        assert!(w.is_disjoint());
    }

    #[test]
    fn grid_case() {
        let mut pts = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let w = zero_overlap_partition(&pts, 4).unwrap();
        assert_eq!(w.groups.len(), 9);
        assert!(w.is_disjoint());
    }

    #[test]
    fn duplicates_rejected() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert_eq!(
            zero_overlap_partition(&pts, 4).unwrap_err(),
            ZeroOverlapError::DuplicatePoints
        );
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(
            zero_overlap_partition(&[], 4).unwrap_err(),
            ZeroOverlapError::Empty
        );
    }

    #[test]
    fn group_count_matches_theorem() {
        // Theorem 3.2: ⌈|S|/4⌉ MBRs.
        for n in [1usize, 3, 4, 5, 16, 17, 100] {
            let pts: Vec<Point> = (0..n)
                .map(|i| Point::new((i * 7 % 13) as f64, (i * 5 % 11) as f64 + i as f64 * 0.01))
                .collect();
            let w = zero_overlap_partition(&pts, 4).unwrap();
            assert_eq!(w.groups.len(), n.div_ceil(4), "n={n}");
            assert!(w.is_disjoint(), "n={n}");
        }
    }
}
