//! Hilbert space-filling curve, used by the Hilbert packing variant.
//!
//! Kamel & Faloutsos' Hilbert-packed R-trees (1993) are a direct
//! descendant of this paper's PACK; ordering by Hilbert value preserves
//! spatial locality better than the paper's plain ascending-x sort while
//! remaining a one-dimensional sort.

use rtree_geom::{Point, Rect};

/// Curve order used when mapping continuous coordinates: a 2^16 × 2^16
/// grid, giving 32-bit Hilbert indices.
pub const DEFAULT_ORDER: u32 = 16;

/// Distance along the Hilbert curve of order `order` for the integer cell
/// `(x, y)`; both coordinates must be `< 2^order`.
pub fn xy_to_d(order: u32, x: u32, y: u32) -> u64 {
    debug_assert!(order <= 31);
    debug_assert!(x < (1 << order) && y < (1 << order));
    let n: i64 = 1 << order;
    let (mut x, mut y) = (x as i64, y as i64);
    let mut d: u64 = 0;
    let mut s: i64 = n / 2;
    while s > 0 {
        let rx = i64::from((x & s) > 0);
        let ry = i64::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse mapping: the integer cell at distance `d` along the curve.
pub fn d_to_xy(order: u32, d: u64) -> (u32, u32) {
    let n: i64 = 1 << order;
    let (mut x, mut y): (i64, i64) = (0, 0);
    let mut t = d as i64;
    let mut s: i64 = 1;
    while s < n {
        let rx = 1 & (t / 2);
        let ry = 1 & (t ^ rx);
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Hilbert index of a point within `bounds`, discretized to
/// [`DEFAULT_ORDER`] bits per axis.
pub fn point_index(p: Point, bounds: &Rect) -> u64 {
    let side = (1u32 << DEFAULT_ORDER) - 1;
    let fx = if bounds.width() > 0.0 {
        (p.x - bounds.min_x) / bounds.width()
    } else {
        0.0
    };
    let fy = if bounds.height() > 0.0 {
        (p.y - bounds.min_y) / bounds.height()
    } else {
        0.0
    };
    let x = (fx.clamp(0.0, 1.0) * side as f64) as u32;
    let y = (fy.clamp(0.0, 1.0) * side as f64) as u32;
    xy_to_d(DEFAULT_ORDER, x, y)
}

/// Hilbert index of a rectangle's center within `bounds` — the sort key
/// of Hilbert packing. Shared by the sequential and parallel packers so
/// both orderings agree bit for bit.
#[inline]
pub fn rect_index(r: &Rect, bounds: &Rect) -> u64 {
    point_index(r.center(), bounds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_small_order() {
        let order = 4;
        for d in 0..(1u64 << (2 * order)) {
            let (x, y) = d_to_xy(order, d);
            assert_eq!(xy_to_d(order, x, y), d);
        }
    }

    #[test]
    fn curve_visits_every_cell_once() {
        let order = 3;
        let mut seen = [false; 64];
        for d in 0..64u64 {
            let (x, y) = d_to_xy(order, d);
            let idx = (y * 8 + x) as usize;
            assert!(!seen[idx], "cell ({x},{y}) visited twice");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        let order = 5;
        let mut prev = d_to_xy(order, 0);
        for d in 1..(1u64 << (2 * order)) {
            let cur = d_to_xy(order, d);
            let manhattan =
                (cur.0 as i64 - prev.0 as i64).abs() + (cur.1 as i64 - prev.1 as i64).abs();
            assert_eq!(manhattan, 1, "jump at d={d}");
            prev = cur;
        }
    }

    #[test]
    fn point_index_respects_locality() {
        let bounds = Rect::new(0.0, 0.0, 100.0, 100.0);
        let a = point_index(Point::new(10.0, 10.0), &bounds);
        let b = point_index(Point::new(10.5, 10.0), &bounds);
        let far = point_index(Point::new(90.0, 90.0), &bounds);
        assert!(a.abs_diff(b) < a.abs_diff(far));
    }

    #[test]
    fn degenerate_bounds_do_not_panic() {
        let bounds = Rect::new(5.0, 5.0, 5.0, 5.0);
        assert_eq!(point_index(Point::new(5.0, 5.0), &bounds), 0);
    }
}
