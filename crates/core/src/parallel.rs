//! Multi-threaded PACK: the bulk-loading pipeline run level-parallel.
//!
//! The sequential packers ([`crate::pack`]) and this module share one
//! engine. Each level is built in three steps:
//!
//! 1. **Order** — the level's entries are sorted by the strategy's
//!    spatial criterion (chunk-sorted across threads and merged; the
//!    comparators are total orders with an index tie-break, so the
//!    permutation is independent of the chunking).
//! 2. **Plan** — the sorted sequence is cut into slabs at boundaries
//!    that are a pure function of `(strategy, n, m)`
//!    ([`SlabPlan`](crate::grouping::SlabPlan)). Every slab holds a
//!    multiple of `m` entries (except the last), so its group count —
//!    and therefore the arena id of every node it will produce — is
//!    known before any grouping runs.
//! 3. **Materialize** — one contiguous arena range is reserved for the
//!    level ([`BottomUpBuilder::reserve`]); the per-slab sub-slices are
//!    split off (`split_at_mut`) and handed to scoped worker threads,
//!    each of which groups its slabs and writes the finished nodes and
//!    `(NodeId, Rect)` handles in place.
//!
//! Because slab boundaries, group counts and arena ids never depend on
//! the thread count, `pack_parallel(items, config, t)` is **bit-identical
//! to `pack(items, config)` for every `t`** — the determinism suite in
//! `tests/parallel_determinism.rs` asserts structural equality across
//! thread counts and strategies.

use crate::grouping::{self, PackStrategy, SlabPlan};
use rtree_geom::Rect;
use rtree_index::builder::{BottomUpBuilder, ReservedRange};
use rtree_index::{Entry, ItemId, Node, NodeId, RTree, RTreeConfig};
use std::cmp::Ordering;

/// Inputs below this size are sorted and grouped inline even when more
/// threads are available: spawn overhead would dominate.
const PARALLEL_CUTOFF: usize = 4096;

/// Minimum items each worker must have before another thread pays for
/// itself: below this, the merge cascade and spawn overhead outweigh the
/// parallel sort/group work.
const MIN_ITEMS_PER_THREAD: usize = PARALLEL_CUTOFF;

/// The default worker count: one per available hardware thread.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Clamps a requested worker count to what the input size and the
/// hardware can actually use.
///
/// Two caps apply: (1) never more threads than hardware threads —
/// oversubscription only adds scheduling overhead and the extra merge
/// passes of the sort cascade (measured at ~0.74× on a 1-core host at
/// `threads = 2`); (2) never fewer than [`MIN_ITEMS_PER_THREAD`] items
/// per worker, so small inputs fall back toward sequential packing.
/// The clamp never changes the output: the pipeline is bit-identical at
/// every thread count, so dropping to fewer workers is purely a
/// scheduling decision.
pub fn effective_threads(requested: usize, n: usize) -> usize {
    let by_work = n / MIN_ITEMS_PER_THREAD;
    requested.min(default_threads()).min(by_work).max(1)
}

/// Packs `items` with the paper's algorithm (ascending-x order +
/// nearest-neighbour grouping) across `threads` worker threads.
///
/// `threads = 0` selects [`default_threads`]. The resulting tree is
/// bit-identical to [`pack`](crate::pack) at every thread count.
pub fn pack_parallel(items: Vec<(Rect, ItemId)>, config: RTreeConfig, threads: usize) -> RTree {
    pack_parallel_with(items, config, PackStrategy::NearestNeighbor, threads)
}

/// [`pack_parallel`] with an explicit [`PackStrategy`].
pub fn pack_parallel_with(
    items: Vec<(Rect, ItemId)>,
    config: RTreeConfig,
    strategy: PackStrategy,
    threads: usize,
) -> RTree {
    let threads = effective_threads(
        if threads == 0 {
            default_threads()
        } else {
            threads
        },
        items.len(),
    );
    let mut builder = BottomUpBuilder::new(config);
    if items.is_empty() {
        return builder.finish_empty();
    }
    let m = config.max_entries;

    // Leaf level: entries point at the data items.
    let rects: Vec<Rect> = items.iter().map(|&(r, _)| r).collect();
    let make_leaf = |i: usize| Entry::item(items[i].0, items[i].1);
    let mut handles = build_level(&mut builder, strategy, m, 0, &rects, &make_leaf, threads);

    // Internal levels, "working ever backwards, until the root is
    // finally reached and created" (§3.3).
    let mut level = 1;
    while handles.len() > 1 {
        handles = build_internal_level(&mut builder, strategy, m, level, &handles, threads);
        level += 1;
    }
    builder.finish(handles[0].0)
}

fn build_internal_level(
    builder: &mut BottomUpBuilder,
    strategy: PackStrategy,
    m: usize,
    level: u32,
    prev: &[(NodeId, Rect)],
    threads: usize,
) -> Vec<(NodeId, Rect)> {
    let rects: Vec<Rect> = prev.iter().map(|&(_, r)| r).collect();
    let make = |i: usize| Entry::node(prev[i].1, prev[i].0);
    build_level(builder, strategy, m, level, &rects, &make, threads)
}

/// One slab's slice of work: its sort-order window plus the disjoint
/// output sub-slices (arena slots and `(NodeId, Rect)` handles) it owns.
struct SlabJob<'a> {
    k: usize,
    ord: &'a [usize],
    slots: &'a mut [Option<Node>],
    handles: &'a mut [(NodeId, Rect)],
}

/// Builds one tree level: orders the entries, reserves the level's arena
/// range, and materializes every slab's nodes — across `threads` workers
/// when the level is large enough. Returns the `(NodeId, Rect)` handles
/// in group order (the next level's input).
fn build_level(
    builder: &mut BottomUpBuilder,
    strategy: PackStrategy,
    m: usize,
    level: u32,
    rects: &[Rect],
    make_entry: &(dyn Fn(usize) -> Entry + Sync),
    threads: usize,
) -> Vec<(NodeId, Rect)> {
    let n = rects.len();
    let threads = if n < PARALLEL_CUTOFF {
        1
    } else {
        threads.max(1)
    };
    let ord = level_order(strategy, rects, threads);
    let plan = SlabPlan::new(strategy, n, m);
    let range = builder.reserve(plan.total_groups());
    let mut handles: Vec<(NodeId, Rect)> =
        vec![(range.id(0), Rect::new(0.0, 0.0, 0.0, 0.0)); plan.total_groups()];

    {
        // Cut the outputs into per-slab disjoint sub-slices.
        let mut jobs: Vec<SlabJob<'_>> = Vec::with_capacity(plan.slab_count());
        let mut slots_rest = builder.reserved_slots_mut(&range);
        let mut handles_rest = handles.as_mut_slice();
        let mut ord_rest = ord.as_slice();
        for k in 0..plan.slab_count() {
            let groups = plan.groups_in_slab(k);
            let entries = plan.slab_range(k).len();
            let (slots, s_rest) = slots_rest.split_at_mut(groups);
            let (hs, h_rest) = handles_rest.split_at_mut(groups);
            let (ord, o_rest) = ord_rest.split_at(entries);
            slots_rest = s_rest;
            handles_rest = h_rest;
            ord_rest = o_rest;
            jobs.push(SlabJob {
                k,
                ord,
                slots,
                handles: hs,
            });
        }

        let workers = threads.min(jobs.len());
        if workers <= 1 {
            for job in jobs {
                fill_slab(strategy, &plan, rects, level, make_entry, &range, job);
            }
        } else {
            // Stripe slabs over workers (slab k → worker k mod w) so a
            // skewed tail doesn't land on one thread.
            let mut buckets: Vec<Vec<SlabJob<'_>>> = (0..workers).map(|_| Vec::new()).collect();
            for job in jobs {
                let w = job.k % workers;
                buckets[w].push(job);
            }
            std::thread::scope(|scope| {
                for bucket in buckets {
                    scope.spawn(move || {
                        for job in bucket {
                            fill_slab(strategy, &plan, rects, level, make_entry, &range, job);
                        }
                    });
                }
            });
        }
    }

    builder.commit_reserved(&range, level);
    handles
}

/// Groups one slab and writes its nodes and handles into the slab's
/// pre-assigned output slices.
fn fill_slab(
    strategy: PackStrategy,
    plan: &SlabPlan,
    rects: &[Rect],
    level: u32,
    make_entry: &(dyn Fn(usize) -> Entry + Sync),
    range: &ReservedRange,
    job: SlabJob<'_>,
) {
    let groups = grouping::group_slab(strategy, rects, job.ord, plan);
    debug_assert_eq!(groups.len(), job.slots.len(), "slab group-count invariant");
    let base = plan.group_offset(job.k);
    for (g, grp) in groups.into_iter().enumerate() {
        let mut node = Node::new(level);
        node.entries = grp.into_iter().map(make_entry).collect();
        let mbr = node.mbr().expect("non-empty group");
        job.handles[g] = (range.id(base + g), mbr);
        job.slots[g] = Some(node);
    }
}

/// The level's sort order under `strategy`, computed with up to
/// `threads` workers but always equal to [`grouping::order`]'s
/// sequential result (the comparators have no equal elements, so every
/// merge schedule produces the same permutation).
///
/// Exposed for external packers (the `rtree-extpack` crate) that sort
/// spill-run buffers with the same key the in-memory packer uses.
pub fn order_parallel(strategy: PackStrategy, rects: &[Rect], threads: usize) -> Vec<usize> {
    level_order(strategy, rects, threads)
}

/// The level's sort order, computed with up to `threads` workers but
/// always equal to [`grouping::order`]'s sequential result (the
/// comparators have no equal elements, so every merge schedule produces
/// the same permutation).
fn level_order(strategy: PackStrategy, rects: &[Rect], threads: usize) -> Vec<usize> {
    if threads <= 1 {
        return grouping::order(strategy, rects);
    }
    let mut ord: Vec<usize> = (0..rects.len()).collect();
    match strategy {
        PackStrategy::Hilbert => {
            let keys = par_hilbert_keys(rects, threads);
            par_sort_by(&mut ord, threads, &|a, b| {
                keys[a].cmp(&keys[b]).then(a.cmp(&b))
            });
        }
        _ => par_sort_by(&mut ord, threads, &|a, b| grouping::x_cmp(rects, a, b)),
    }
    ord
}

/// Hilbert keys of all centers, computed in parallel chunks.
fn par_hilbert_keys(rects: &[Rect], threads: usize) -> Vec<u64> {
    let bounds = Rect::mbr_of_rects(rects.iter().copied()).expect("non-empty");
    let mut keys = vec![0u64; rects.len()];
    let chunk = rects.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for (keys_chunk, rects_chunk) in keys.chunks_mut(chunk).zip(rects.chunks(chunk)) {
            let bounds = &bounds;
            scope.spawn(move || {
                for (k, r) in keys_chunk.iter_mut().zip(rects_chunk) {
                    *k = crate::hilbert::rect_index(r, bounds);
                }
            });
        }
    });
    keys
}

/// Parallel merge sort over index values: sort `threads` chunks
/// concurrently, then merge runs pairwise. Deterministic for any total
/// order; with tie-free comparators the result is independent of the
/// chunk boundaries (hence of `threads`).
fn par_sort_by(ord: &mut [usize], threads: usize, cmp: &(dyn Fn(usize, usize) -> Ordering + Sync)) {
    let n = ord.len();
    let chunk = n.div_ceil(threads).max(1);
    if threads <= 1 || chunk >= n {
        ord.sort_unstable_by(|&a, &b| cmp(a, b));
        return;
    }
    std::thread::scope(|scope| {
        for part in ord.chunks_mut(chunk) {
            scope.spawn(move || part.sort_unstable_by(|&a, &b| cmp(a, b)));
        }
    });
    // Bottom-up merge cascade over the sorted runs of length `chunk`.
    let mut buf = vec![0usize; n];
    let mut src_is_ord = true;
    let mut width = chunk;
    while width < n {
        {
            let (src, dst): (&[usize], &mut [usize]) = if src_is_ord {
                (&*ord, &mut buf)
            } else {
                (&*buf, ord)
            };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                merge_runs(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi], cmp);
                lo = hi;
            }
        }
        src_is_ord = !src_is_ord;
        width *= 2;
    }
    if !src_is_ord {
        ord.copy_from_slice(&buf);
    }
}

/// Sorts a slice of values across up to `threads` workers: chunk-sort
/// concurrently, then a bottom-up merge cascade over the sorted runs.
/// With a tie-free comparator the result is independent of the chunk
/// boundaries — hence of `threads` — and equals `sort_unstable_by`.
///
/// Exposed for external packers (the `rtree-extpack` crate), which sort
/// spill-run record buffers by the pack key directly instead of through
/// an index permutation.
pub fn par_sort_values<T, F>(data: &mut [T], threads: usize, cmp: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = data.len();
    let chunk = n.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || chunk >= n || n < PARALLEL_CUTOFF {
        data.sort_unstable_by(&cmp);
        return;
    }
    std::thread::scope(|scope| {
        for part in data.chunks_mut(chunk) {
            let cmp = &cmp;
            scope.spawn(move || part.sort_unstable_by(cmp));
        }
    });
    let mut buf: Vec<T> = data.to_vec();
    let mut src_is_data = true;
    let mut width = chunk;
    while width < n {
        {
            let (src, dst): (&[T], &mut [T]) = if src_is_data {
                (&*data, &mut buf)
            } else {
                (&*buf, data)
            };
            let mut lo = 0;
            while lo < n {
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                merge_value_runs(&src[lo..mid], &src[mid..hi], &mut dst[lo..hi], &cmp);
                lo = hi;
            }
        }
        src_is_data = !src_is_data;
        width *= 2;
    }
    if !src_is_data {
        data.copy_from_slice(&buf);
    }
}

/// Stable two-run merge over values (left run wins ties).
fn merge_value_runs<T: Copy>(
    left: &[T],
    right: &[T],
    out: &mut [T],
    cmp: &(dyn Fn(&T, &T) -> Ordering + Sync),
) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        *slot = if i < left.len()
            && (j >= right.len() || cmp(&left[i], &right[j]) != Ordering::Greater)
        {
            i += 1;
            left[i - 1]
        } else {
            j += 1;
            right[j - 1]
        };
    }
}

/// Stable two-run merge (left run wins ties).
fn merge_runs(
    left: &[usize],
    right: &[usize],
    out: &mut [usize],
    cmp: &(dyn Fn(usize, usize) -> Ordering + Sync),
) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        *slot = if i < left.len()
            && (j >= right.len() || cmp(left[i], right[j]) != Ordering::Greater)
        {
            i += 1;
            left[i - 1]
        } else {
            j += 1;
            right[j - 1]
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtree_geom::Point;

    fn points(n: u64, seed: u64) -> Vec<(Rect, ItemId)> {
        let mut s = seed;
        (0..n)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = ((s >> 33) % 1_000_000) as f64 / 1000.0;
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = ((s >> 33) % 1_000_000) as f64 / 1000.0;
                (Rect::from_point(Point::new(x, y)), ItemId(i))
            })
            .collect()
    }

    #[test]
    fn empty_and_single() {
        let t = pack_parallel(Vec::new(), RTreeConfig::PAPER, 4);
        assert!(t.is_empty());
        t.assert_valid();
        let t = pack_parallel(points(1, 7), RTreeConfig::PAPER, 4);
        assert_eq!(t.len(), 1);
        t.validate_with(false).unwrap();
    }

    #[test]
    fn parallel_output_is_valid_at_scale() {
        // Enough items to exceed the cutoff and spread over real slabs.
        let items = points(10_000, 3);
        for strategy in PackStrategy::ALL {
            let t = pack_parallel_with(items.clone(), RTreeConfig::PAPER, strategy, 4);
            t.validate_with(false)
                .unwrap_or_else(|e| panic!("{strategy:?}: {e}"));
            assert_eq!(t.len(), 10_000);
        }
    }

    #[test]
    fn matches_sequential_pack_exactly() {
        let items = points(10_000, 11);
        let seq = crate::pack(items.clone(), RTreeConfig::PAPER);
        for threads in [1, 2, 4, 8] {
            let par = pack_parallel(items.clone(), RTreeConfig::PAPER, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn oversubscription_is_clamped() {
        let hw = default_threads();
        // Requests beyond the hardware thread count are capped.
        assert_eq!(effective_threads(1024, 1_000_000), hw);
        // Small inputs fall back to sequential regardless of the request.
        assert_eq!(effective_threads(8, 100), 1);
        assert_eq!(effective_threads(8, MIN_ITEMS_PER_THREAD - 1), 1);
        // Each worker must have at least MIN_ITEMS_PER_THREAD items.
        assert_eq!(
            effective_threads(8, 2 * MIN_ITEMS_PER_THREAD),
            hw.min(2),
            "two slabs of work can use at most two workers"
        );
        // Zero never escapes the clamp.
        assert_eq!(effective_threads(0, 1_000_000), 1);
    }

    #[test]
    fn clamped_thread_counts_keep_bit_identical_output() {
        // The clamp is a scheduling decision only: requesting far more
        // threads than the host has must not change the tree.
        let items = points(10_000, 19);
        let seq = crate::pack(items.clone(), RTreeConfig::PAPER);
        let par = pack_parallel(items, RTreeConfig::PAPER, 1024);
        assert_eq!(par, seq);
    }

    #[test]
    fn zero_threads_means_auto() {
        let items = points(5_000, 13);
        let auto = pack_parallel(items.clone(), RTreeConfig::PAPER, 0);
        let one = pack_parallel(items, RTreeConfig::PAPER, 1);
        assert_eq!(auto, one);
    }

    #[test]
    fn par_sort_values_matches_sequential_at_every_thread_count() {
        let mut s = 41u64;
        let base: Vec<(u64, u64)> = (0..9_000u64)
            .map(|i| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Duplicate primary keys force the tie-break to matter.
                ((s >> 33) % 512, i)
            })
            .collect();
        let cmp = |a: &(u64, u64), b: &(u64, u64)| a.0.cmp(&b.0).then(a.1.cmp(&b.1));
        let mut expect = base.clone();
        expect.sort_unstable_by(cmp);
        for threads in [1, 2, 3, 4, 8] {
            let mut got = base.clone();
            par_sort_values(&mut got, threads, cmp);
            assert_eq!(got, expect, "threads={threads}");
        }
        // Tiny and empty inputs take the inline path.
        let mut tiny: Vec<(u64, u64)> = vec![(3, 0), (1, 1), (2, 2)];
        par_sort_values(&mut tiny, 4, cmp);
        assert_eq!(tiny, vec![(1, 1), (2, 2), (3, 0)]);
        let mut empty: Vec<(u64, u64)> = Vec::new();
        par_sort_values(&mut empty, 4, cmp);
        assert!(empty.is_empty());
    }

    #[test]
    fn par_sort_matches_sequential_order() {
        let items = points(9_731, 17); // not a multiple of anything relevant
        let rects: Vec<Rect> = items.iter().map(|&(r, _)| r).collect();
        for strategy in PackStrategy::ALL {
            let seq = grouping::order(strategy, &rects);
            for threads in [2, 3, 4, 8] {
                assert_eq!(
                    level_order(strategy, &rects, threads),
                    seq,
                    "{strategy:?} threads={threads}"
                );
            }
        }
    }
}
