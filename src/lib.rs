//! **packed-rtree** — a reproduction of *"Direct Spatial Search on
//! Pictorial Databases Using Packed R-trees"* (Roussopoulos & Leifker,
//! SIGMOD 1985) as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public surface:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`geom`] | `rtree-geom` | points, MBRs, segments, regions, exact coverage/overlap areas |
//! | [`index`] | `rtree-index` | Guttman R-tree: INSERT/DELETE/SEARCH, kNN, metrics, validation |
//! | [`pack`] | `packed-rtree-core` | the PACK algorithm and its descendants; Theorems 3.2/3.3 machinery |
//! | [`storage`] | `rtree-storage` | simulated disk: pager, LRU buffer pool, page-resident trees |
//! | [`relational`] | `pictorial-relational` | tuples, schemas, B+tree indexes, predicates |
//! | [`psql`] | `psql` | the pictorial query language: parser, planner, executor, ASCII monitor |
//! | [`workload`] | `rtree-workload` | paper + extension workload generators, synthetic US map |
//!
//! # Quick start
//!
//! ```
//! use packed_rtree::pack::pack;
//! use packed_rtree::index::{ItemId, RTreeConfig, SearchStats};
//! use packed_rtree::geom::{Point, Rect};
//!
//! // Bulk-load 1000 points with the paper's PACK algorithm…
//! let items: Vec<(Rect, ItemId)> = (0..1000)
//!     .map(|i| {
//!         let p = Point::new((i % 40) as f64, (i / 40) as f64);
//!         (Rect::from_point(p), ItemId(i))
//!     })
//!     .collect();
//! let tree = pack(items, RTreeConfig::PAPER);
//!
//! // …and run the paper's direct spatial search.
//! let mut stats = SearchStats::default();
//! let hits = tree.search_within(&Rect::new(0.0, 0.0, 10.0, 10.0), &mut stats);
//! assert_eq!(hits.len(), 121);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use packed_rtree_core as pack;
pub use pictorial_relational as relational;
pub use psql;
pub use rtree_geom as geom;
pub use rtree_index as index;
pub use rtree_storage as storage;
pub use rtree_workload as workload;
