//! Workspace-level property-based tests: randomized operation sequences
//! against brute-force models, spanning packing, dynamic updates, search
//! and the theorems.

use packed_rtree::geom::{Point, Rect};
use packed_rtree::index::{ItemId, RTree, RTreeConfig, SearchStats, SplitPolicy};
use packed_rtree::pack::zero_overlap::zero_overlap_partition;
use packed_rtree::pack::{pack_with, PackStrategy};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..1000.0f64, 0.0..1000.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_items(max: usize) -> impl Strategy<Value = Vec<(Rect, ItemId)>> {
    prop::collection::vec(arb_point(), 0..max).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, p)| (Rect::from_point(p), ItemId(i as u64)))
            .collect()
    })
}

fn arb_window() -> impl Strategy<Value = Rect> {
    (arb_point(), arb_point()).prop_map(|(a, b)| Rect::from_corners(a, b))
}

fn arb_config() -> impl Strategy<Value = RTreeConfig> {
    (
        2usize..12,
        prop::sample::select(vec![SplitPolicy::Linear, SplitPolicy::Quadratic]),
    )
        .prop_map(|(m, split)| RTreeConfig::new(m.max(2), (m / 2).max(1), split))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packing any point set with any strategy yields a valid tree
    /// containing exactly the input items.
    #[test]
    fn packing_preserves_contents(items in arb_items(300)) {
        for strategy in PackStrategy::ALL {
            let tree = pack_with(items.clone(), RTreeConfig::PAPER, strategy);
            prop_assert!(tree.validate_with(false).is_ok());
            let mut got: Vec<ItemId> = tree.items().into_iter().map(|(_, id)| id).collect();
            got.sort();
            let mut expect: Vec<ItemId> = items.iter().map(|&(_, id)| id).collect();
            expect.sort();
            prop_assert_eq!(got, expect);
        }
    }

    /// Window search on a packed tree equals brute force.
    #[test]
    fn packed_search_equals_brute_force(
        items in arb_items(200),
        window in arb_window(),
    ) {
        let tree = pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::NearestNeighbor);
        let mut stats = SearchStats::default();
        let mut got = tree.search_within(&window, &mut stats);
        got.sort();
        let mut expect: Vec<ItemId> = items
            .iter()
            .filter(|(r, _)| r.covered_by(&window))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Dynamic insert/remove sequences keep the tree valid and searches
    /// correct, at any branching factor and split policy.
    #[test]
    fn dynamic_ops_match_model(
        config in arb_config(),
        items in arb_items(150),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..50),
        window in arb_window(),
    ) {
        let mut tree = RTree::new(config);
        let mut model: Vec<(Rect, ItemId)> = Vec::new();
        for &(mbr, id) in &items {
            tree.insert(mbr, id);
            model.push((mbr, id));
        }
        for idx in removals {
            if model.is_empty() {
                break;
            }
            let k = idx.index(model.len());
            let (mbr, id) = model.swap_remove(k);
            prop_assert!(tree.remove(mbr, id));
        }
        prop_assert!(tree.validate().is_ok(), "{:?}", tree.validate());
        prop_assert_eq!(tree.len(), model.len());

        let mut stats = SearchStats::default();
        let mut got = tree.search_intersecting(&window, &mut stats);
        got.sort();
        let mut expect: Vec<ItemId> = model
            .iter()
            .filter(|(r, _)| r.intersects(&window))
            .map(|&(_, id)| id)
            .collect();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// kNN on a packed tree returns exactly the k smallest distances.
    #[test]
    fn knn_matches_brute_force(
        items in arb_items(150),
        q in arb_point(),
        k in 1usize..20,
    ) {
        let tree = pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::SortTileRecursive);
        let mut stats = SearchStats::default();
        let got = tree.nearest_neighbors(q, k, &mut stats);
        let mut brute: Vec<f64> = items.iter().map(|(r, _)| r.min_distance_sq(q)).collect();
        brute.sort_by(f64::total_cmp);
        let expect: Vec<f64> = brute.into_iter().take(k).collect();
        let got_d: Vec<f64> = got.iter().map(|n| n.distance_sq).collect();
        prop_assert_eq!(got_d, expect);
    }

    /// Theorem 3.2 holds for arbitrary distinct point sets and group
    /// sizes.
    #[test]
    fn zero_overlap_theorem(
        pts in prop::collection::vec(arb_point(), 1..80),
        group in 2usize..8,
    ) {
        let mut dedup = pts;
        dedup.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
        dedup.dedup();
        let witness = zero_overlap_partition(&dedup, group).expect("distinct points");
        prop_assert!(witness.is_disjoint());
        prop_assert_eq!(witness.groups.len(), dedup.len().div_ceil(group));
    }

    /// A packed tree never has more nodes than the dynamically built
    /// tree over the same data (full occupancy ⇒ minimal node count).
    #[test]
    fn pack_node_count_is_minimal(items in arb_items(250)) {
        prop_assume!(items.len() >= 8);
        let packed = pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::NearestNeighbor);
        let mut dynamic = RTree::new(RTreeConfig::PAPER);
        for &(mbr, id) in &items {
            dynamic.insert(mbr, id);
        }
        prop_assert!(packed.node_count() <= dynamic.node_count());
    }
}
