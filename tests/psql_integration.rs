//! End-to-end PSQL over a database built from scratch through the public
//! API (no `with_us_map` shortcut): pictures, relations, associations,
//! packed indexes, queries, updates.

use packed_rtree::geom::{Point, Rect, Region, SpatialObject};
use packed_rtree::index::RTreeConfig;
use packed_rtree::psql::database::PictorialDatabase;
use packed_rtree::psql::exec::query;
use packed_rtree::relational::{Column, ColumnType, Schema, Value};

/// A little industrial-plant floor plan: machines (points), safety zones
/// (regions), conveyors (segments) — showing the system is not tied to
/// maps.
fn build_factory() -> PictorialDatabase {
    let mut db = PictorialDatabase::new(RTreeConfig::PAPER);
    let frame = Rect::new(0.0, 0.0, 60.0, 40.0);
    db.create_picture("floor-plan", frame).unwrap();

    db.catalog_mut()
        .create_relation(
            "machines",
            Schema::new(vec![
                Column::new("name", ColumnType::Str),
                Column::new("power-kw", ColumnType::Float),
                Column::new("loc", ColumnType::Pointer),
            ])
            .unwrap(),
        )
        .unwrap();
    db.associate("machines", "loc", "floor-plan").unwrap();

    db.catalog_mut()
        .create_relation(
            "zones",
            Schema::new(vec![
                Column::new("zone", ColumnType::Str),
                Column::new("hazard-level", ColumnType::Int),
                Column::new("loc", ColumnType::Pointer),
            ])
            .unwrap(),
        )
        .unwrap();
    db.associate("zones", "loc", "floor-plan").unwrap();

    let machines = [
        ("press-1", 75.0, 5.0, 5.0),
        ("press-2", 80.0, 8.0, 6.0),
        ("lathe-1", 12.0, 25.0, 20.0),
        ("lathe-2", 11.5, 28.0, 22.0),
        ("oven-1", 200.0, 50.0, 35.0),
        ("robot-1", 30.0, 52.0, 33.0),
        ("packer-1", 8.0, 55.0, 8.0),
    ];
    for (name, kw, x, y) in machines {
        let obj = db
            .add_object("floor-plan", SpatialObject::Point(Point::new(x, y)), name)
            .unwrap();
        db.insert(
            "machines",
            vec![name.into(), kw.into(), Value::Pointer(obj)],
        )
        .unwrap();
    }
    let zones = [
        ("press-area", 3i64, Rect::new(0.0, 0.0, 12.0, 12.0)),
        ("machining", 2, Rect::new(20.0, 15.0, 35.0, 28.0)),
        ("hot-zone", 5, Rect::new(45.0, 28.0, 60.0, 40.0)),
        ("shipping", 1, Rect::new(45.0, 0.0, 60.0, 14.0)),
    ];
    for (name, hazard, rect) in zones {
        let obj = db
            .add_object(
                "floor-plan",
                SpatialObject::Region(Region::rectangle(rect)),
                name,
            )
            .unwrap();
        db.insert(
            "zones",
            vec![name.into(), hazard.into(), Value::Pointer(obj)],
        )
        .unwrap();
    }
    db.catalog_mut()
        .create_index("machines", "power-kw")
        .unwrap();
    db.pack_all();
    db
}

#[test]
fn window_search_on_custom_database() {
    let db = build_factory();
    let result = query(
        &db,
        "select name, power-kw from machines on floor-plan \
         at loc covered-by {26.5 +- 8.5, 21 +- 8}",
    )
    .unwrap();
    let mut names: Vec<String> = result
        .column("name")
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["lathe-1", "lathe-2"]);
}

#[test]
fn juxtaposition_machines_in_zones() {
    let db = build_factory();
    let result = query(
        &db,
        "select name, zone, hazard-level from machines, zones \
         at machines.loc covered-by zones.loc \
         where hazard-level >= 3",
    )
    .unwrap();
    let mut pairs: Vec<(String, String)> = result
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    pairs.sort();
    assert_eq!(
        pairs,
        vec![
            ("oven-1".to_string(), "hot-zone".to_string()),
            ("press-1".to_string(), "press-area".to_string()),
            ("press-2".to_string(), "press-area".to_string()),
            ("robot-1".to_string(), "hot-zone".to_string()),
        ]
    );
}

#[test]
fn alphanumeric_index_drives_access() {
    let db = build_factory();
    let result = query(&db, "select name from machines where power-kw >= 50").unwrap();
    let mut names: Vec<String> = result
        .column("name")
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["oven-1", "press-1", "press-2"]);
}

#[test]
fn updates_are_visible_to_subsequent_queries() {
    let mut db = build_factory();
    // A new machine appears in the machining zone.
    let obj = db
        .add_object(
            "floor-plan",
            SpatialObject::Point(Point::new(30.0, 25.0)),
            "mill-1",
        )
        .unwrap();
    db.insert(
        "machines",
        vec!["mill-1".into(), 45.0.into(), Value::Pointer(obj)],
    )
    .unwrap();

    let result = query(
        &db,
        "select name from machines, zones at machines.loc covered-by zones.loc \
         where zone = 'machining'",
    )
    .unwrap();
    let mut names: Vec<String> = result
        .column("name")
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect();
    names.sort();
    assert_eq!(names, vec!["lathe-1", "lathe-2", "mill-1"]);

    // Delete a machine; it must disappear from spatial results.
    let tid = db
        .catalog()
        .relation("machines")
        .unwrap()
        .scan()
        .find(|(_, t)| t[0] == Value::str("lathe-1"))
        .map(|(tid, _)| tid)
        .unwrap();
    db.delete("machines", tid).unwrap();
    let result2 = query(
        &db,
        "select name from machines on floor-plan at loc covered-by {26.5 +- 8.5, 21 +- 8}",
    )
    .unwrap();
    let mut names2: Vec<String> = result2
        .column("name")
        .unwrap()
        .iter()
        .map(|v| v.to_string())
        .collect();
    names2.sort();
    // mill-1 (inserted above at (30, 25)) is inside this window too.
    assert_eq!(names2, vec!["lathe-2", "mill-1"]);
}

#[test]
fn pictorial_functions_on_custom_objects() {
    let db = build_factory();
    let result = query(
        &db,
        "select zone, area(loc) from zones where area(loc) > 150",
    )
    .unwrap();
    let mut got: Vec<(String, String)> = result
        .rows
        .iter()
        .map(|r| (r[0].to_string(), r[1].to_string()))
        .collect();
    got.sort();
    // press-area 144, machining 195, hot-zone 180, shipping 210.
    assert_eq!(got.len(), 3);
    assert_eq!(got[0].0, "hot-zone");
}

#[test]
fn us_map_smoke_all_relations() {
    let db = PictorialDatabase::with_us_map();
    for rel in ["cities", "states", "time-zones", "lakes", "highways"] {
        let result = query(&db, &format!("select * from {rel}")).unwrap();
        assert!(!result.is_empty(), "{rel} should have tuples");
    }
}
