//! Cross-crate integration: workload generators → packing algorithms →
//! searches → disk images, checked against brute force.

use packed_rtree::geom::{Point, Rect};
use packed_rtree::index::{ItemId, RTreeConfig, SearchStats, SplitPolicy};
use packed_rtree::pack::{pack_with, PackStrategy};
use packed_rtree::storage::{BufferPool, DiskRTree, Pager};
use packed_rtree::workload::{points, queries, rng, PAPER_UNIVERSE};

fn brute_force_within(items: &[(Rect, ItemId)], w: &Rect) -> Vec<ItemId> {
    let mut out: Vec<ItemId> = items
        .iter()
        .filter(|(r, _)| r.covered_by(w))
        .map(|&(_, id)| id)
        .collect();
    out.sort();
    out
}

#[test]
fn every_strategy_matches_brute_force_on_every_distribution() {
    let mut r = rng(11);
    let distributions: Vec<(&str, Vec<Point>)> = vec![
        ("uniform", points::uniform(&mut r, &PAPER_UNIVERSE, 400)),
        (
            "clustered",
            points::clustered(&mut r, &PAPER_UNIVERSE, 400, 6, 30.0),
        ),
        ("grid", points::grid(&PAPER_UNIVERSE, 20, 20)),
        ("skewed", points::skewed(&mut r, &PAPER_UNIVERSE, 400, 2.5)),
        (
            "diagonal",
            points::diagonal(&mut r, &PAPER_UNIVERSE, 400, 40.0),
        ),
    ];
    let windows = queries::window_queries(&mut r, &PAPER_UNIVERSE, 25, 0.02);

    for (dist_name, pts) in distributions {
        let items = points::as_items(&pts);
        for strategy in PackStrategy::ALL {
            let tree = pack_with(items.clone(), RTreeConfig::PAPER, strategy);
            tree.validate_with(false)
                .unwrap_or_else(|e| panic!("{dist_name}/{strategy:?}: {e}"));
            let mut stats = SearchStats::default();
            for w in &windows {
                let mut got = tree.search_within(w, &mut stats);
                got.sort();
                assert_eq!(
                    got,
                    brute_force_within(&items, w),
                    "{dist_name}/{strategy:?} window {w}"
                );
            }
        }
    }
}

#[test]
fn pack_insert_delete_roundtrip_preserves_search() {
    // Pack half the data, insert the other half dynamically, delete a
    // quarter — results must match brute force over the survivors.
    let mut r = rng(13);
    let pts = points::uniform(&mut r, &PAPER_UNIVERSE, 600);
    let items = points::as_items(&pts);
    let (packed_half, dynamic_half) = items.split_at(300);

    let mut tree = pack_with(
        packed_half.to_vec(),
        RTreeConfig::PAPER,
        PackStrategy::NearestNeighbor,
    );
    for &(mbr, id) in dynamic_half {
        tree.insert(mbr, id);
    }
    // Delete every 4th item.
    let mut survivors = Vec::new();
    for (i, &(mbr, id)) in items.iter().enumerate() {
        if i % 4 == 0 {
            assert!(tree.remove(mbr, id), "lost {id}");
        } else {
            survivors.push((mbr, id));
        }
    }
    tree.validate_with(false).unwrap();
    assert_eq!(tree.len(), survivors.len());

    let windows = queries::window_queries(&mut r, &PAPER_UNIVERSE, 30, 0.03);
    let mut stats = SearchStats::default();
    for w in &windows {
        let mut got = tree.search_within(w, &mut stats);
        got.sort();
        assert_eq!(got, brute_force_within(&survivors, w), "window {w}");
    }
}

#[test]
fn disk_image_agrees_with_memory_for_all_strategies() {
    let mut r = rng(17);
    let pts = points::uniform(&mut r, &PAPER_UNIVERSE, 800);
    let items = points::as_items(&pts);
    let windows = queries::window_queries(&mut r, &PAPER_UNIVERSE, 20, 0.01);

    for strategy in [
        PackStrategy::NearestNeighbor,
        PackStrategy::SortTileRecursive,
    ] {
        let tree = pack_with(items.clone(), RTreeConfig::with_branching(32), strategy);
        let pager = Pager::temp().unwrap();
        let disk = DiskRTree::store(&tree, &pager).unwrap();
        let pool = BufferPool::new(&pager, 16);
        let mut mem_stats = SearchStats::default();
        let mut disk_stats = SearchStats::default();
        for w in &windows {
            let mut mem = tree.search_within(w, &mut mem_stats);
            let mut dsk = disk.search_within(&pool, w, &mut disk_stats).unwrap();
            mem.sort();
            dsk.sort();
            assert_eq!(mem, dsk, "{strategy:?} window {w}");
        }
        assert_eq!(mem_stats.nodes_visited, disk_stats.nodes_visited);
    }
}

#[test]
fn insert_policies_and_pack_agree_on_results() {
    // Different builds of the same data must return identical result
    // sets for identical queries (performance differs, answers don't).
    let mut r = rng(19);
    let pts = points::uniform(&mut r, &PAPER_UNIVERSE, 500);
    let items = points::as_items(&pts);
    let windows = queries::window_queries(&mut r, &PAPER_UNIVERSE, 20, 0.02);

    let mut trees = Vec::new();
    trees.push(pack_with(
        items.clone(),
        RTreeConfig::PAPER,
        PackStrategy::NearestNeighbor,
    ));
    for split in [
        SplitPolicy::Linear,
        SplitPolicy::Quadratic,
        SplitPolicy::Exhaustive,
    ] {
        let mut t = packed_rtree::index::RTree::new(RTreeConfig::PAPER.with_split(split));
        for &(mbr, id) in &items {
            t.insert(mbr, id);
        }
        trees.push(t);
    }
    let mut stats = SearchStats::default();
    for w in &windows {
        let mut reference: Option<Vec<ItemId>> = None;
        for t in &trees {
            let mut got = t.search_within(w, &mut stats);
            got.sort();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(&got, r, "window {w}"),
            }
        }
    }
}

#[test]
fn knn_is_consistent_across_builds() {
    let mut r = rng(23);
    let pts = points::uniform(&mut r, &PAPER_UNIVERSE, 400);
    let items = points::as_items(&pts);
    let packed = pack_with(items.clone(), RTreeConfig::PAPER, PackStrategy::Hilbert);
    let mut dynamic = packed_rtree::index::RTree::new(RTreeConfig::PAPER);
    for &(mbr, id) in &items {
        dynamic.insert(mbr, id);
    }
    let mut stats = SearchStats::default();
    for &q in points::uniform(&mut r, &PAPER_UNIVERSE, 50).iter() {
        let a = packed.nearest_neighbors(q, 5, &mut stats);
        let b = dynamic.nearest_neighbors(q, 5, &mut stats);
        let da: Vec<f64> = a.iter().map(|n| n.distance_sq).collect();
        let db: Vec<f64> = b.iter().map(|n| n.distance_sq).collect();
        assert_eq!(da, db, "query {q}");
    }
}
